#ifndef BBF_APPS_LSM_RUN_H_
#define BBF_APPS_LSM_RUN_H_

#include <cstdint>
#include <istream>
#include <memory>
#include <optional>
#include <ostream>
#include <vector>

#include "apps/lsm/io_model.h"
#include "core/filter.h"
#include "range/range_filter.h"

namespace bbf::lsm {

/// One key/value entry in a sorted run; deletes travel as tombstones.
struct Entry {
  uint64_t key;
  uint64_t value;
  bool tombstone = false;
};

/// Which point filter each run carries (§3.1: "as each file is immutable
/// once created, any static filter is applicable in this context").
enum class PointFilterKind {
  kNone,
  kBloom,
  kBlockedBloom,
  kXor,
  kRibbon,
  kCuckoo,
  kQuotient,
};

/// Which range filter each run carries (§2.5). kMemento is the dynamic
/// family (DESIGN.md §16): built online from the key stream, no
/// rebuild-from-scratch needed when a run's keys arrive incrementally.
enum class RangeFilterKind {
  kNone,
  kPrefixBloom,
  kSurf,
  kRosetta,
  kSnarf,
  kGrafite,
  kMemento,
};

/// Builds a fresh point filter over `keys` — the compaction-time rebuild
/// path, also reused when a quarantined run's filter is regenerated from
/// its key stream.
std::unique_ptr<Filter> BuildPointFilter(const std::vector<uint64_t>& keys,
                                         PointFilterKind kind,
                                         double bits_per_key, uint64_t seed);

/// Builds a fresh range filter over `keys` (nullptr for kNone or empty).
std::unique_ptr<RangeFilter> BuildRangeFilter(
    const std::vector<uint64_t>& keys, RangeFilterKind kind,
    double bits_per_key);

/// An immutable sorted run ("file") with optional per-run filters.
class SortedRun {
 public:
  /// Builds from entries sorted by key (newest version per key only),
  /// constructing both filters from the key stream. `id` names the run's
  /// persistent files (0 = never persisted).
  SortedRun(uint64_t id, std::vector<Entry> entries,
            PointFilterKind point_kind, double point_bits_per_key,
            RangeFilterKind range_kind, double range_bits_per_key,
            uint64_t filter_seed);

  /// Flush-adoption path (DESIGN.md §13): the run takes ownership of a
  /// filter that already covers exactly its keys — the memtable's
  /// expandable filter — so the mutable level's flush skips the
  /// rebuild-from-scratch the other constructor performs. The range
  /// filter is still built here (range filters are static-only).
  SortedRun(uint64_t id, std::vector<Entry> entries,
            std::unique_ptr<Filter> adopted_point_filter,
            RangeFilterKind range_kind, double range_bits_per_key);

  /// Recovery path: entries decoded from the run's data frame plus
  /// whatever filters survived their frames. A null filter whose
  /// `quarantined` flag is set serves filterless — every Get pays the
  /// data read — until the next compaction rebuilds it.
  SortedRun(uint64_t id, std::vector<Entry> entries,
            std::unique_ptr<Filter> point_filter, bool point_quarantined,
            std::unique_ptr<RangeFilter> range_filter, bool range_quarantined);

  /// Point lookup. Consults the filter first; a filter miss costs nothing.
  /// Returns the entry (possibly a tombstone) if present.
  std::optional<Entry> Get(uint64_t key, IoStats* io) const;

  /// Appends every live entry in [lo, hi] to `out`, charging page reads.
  /// Consults the range filter first.
  void Scan(uint64_t lo, uint64_t hi, std::vector<Entry>* out,
            IoStats* io) const;

  uint64_t id() const { return id_; }
  uint64_t size() const { return entries_.size(); }
  uint64_t min_key() const { return entries_.empty() ? 0 : entries_.front().key; }
  uint64_t max_key() const { return entries_.empty() ? 0 : entries_.back().key; }
  const std::vector<Entry>& entries() const { return entries_; }
  /// The run's key stream, for filter rebuilds.
  std::vector<uint64_t> Keys() const;

  const Filter* point_filter() const { return point_filter_.get(); }
  const RangeFilter* range_filter() const { return range_filter_.get(); }
  bool point_quarantined() const { return point_quarantined_; }
  bool range_quarantined() const { return range_quarantined_; }

  /// Replaces a missing/quarantined filter after a rebuild; clears the
  /// quarantine flag and marks the filter un-persisted.
  void ReplacePointFilter(std::unique_ptr<Filter> filter);
  void ReplaceRangeFilter(std::unique_ptr<RangeFilter> filter);

  // Persistence bookkeeping, owned by LsmTree's commit protocol.
  bool data_persisted() const { return data_persisted_; }
  void set_data_persisted() { data_persisted_ = true; }
  bool point_filter_persisted() const { return point_filter_persisted_; }
  void set_point_filter_persisted(bool v) { point_filter_persisted_ = v; }
  bool range_filter_persisted() const { return range_filter_persisted_; }
  void set_range_filter_persisted(bool v) { range_filter_persisted_ = v; }

  /// Writes the run's entries as one checksummed "lsm-run" frame.
  bool SaveData(std::ostream& os) const;
  /// Reads and validates one "lsm-run" frame: checksum, entry count,
  /// strictly increasing keys. Returns false (empty `out`) on any defect.
  static bool LoadData(std::istream& is, std::vector<Entry>* out);

  /// In-memory filter footprint of this run.
  size_t FilterBits() const;

 private:
  uint64_t id_ = 0;
  std::vector<Entry> entries_;
  std::unique_ptr<Filter> point_filter_;
  std::unique_ptr<RangeFilter> range_filter_;
  bool point_quarantined_ = false;
  bool range_quarantined_ = false;
  bool data_persisted_ = false;
  bool point_filter_persisted_ = false;
  bool range_filter_persisted_ = false;
};

/// Reads one range-filter snapshot frame and instantiates the matching
/// family. Only families with snapshot payloads load (currently
/// prefix-bloom and memento); an unknown or corrupt frame returns nullptr
/// and the caller rebuilds from the key stream instead.
std::unique_ptr<RangeFilter> LoadRangeFilterSnapshot(std::istream& is);

}  // namespace bbf::lsm

#endif  // BBF_APPS_LSM_RUN_H_
