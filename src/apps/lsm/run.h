#ifndef BBF_APPS_LSM_RUN_H_
#define BBF_APPS_LSM_RUN_H_

#include <cstdint>
#include <memory>
#include <optional>
#include <vector>

#include "apps/lsm/io_model.h"
#include "core/filter.h"
#include "range/range_filter.h"

namespace bbf::lsm {

/// One key/value entry in a sorted run; deletes travel as tombstones.
struct Entry {
  uint64_t key;
  uint64_t value;
  bool tombstone = false;
};

/// Which point filter each run carries (§3.1: "as each file is immutable
/// once created, any static filter is applicable in this context").
enum class PointFilterKind {
  kNone,
  kBloom,
  kBlockedBloom,
  kXor,
  kRibbon,
  kCuckoo,
  kQuotient,
};

/// Which range filter each run carries (§2.5).
enum class RangeFilterKind {
  kNone,
  kPrefixBloom,
  kSurf,
  kRosetta,
  kSnarf,
  kGrafite,
};

/// An immutable sorted run ("file") with optional per-run filters.
class SortedRun {
 public:
  /// Builds from entries sorted by key (newest version per key only).
  SortedRun(std::vector<Entry> entries, PointFilterKind point_kind,
            double point_bits_per_key, RangeFilterKind range_kind,
            double range_bits_per_key, uint64_t filter_seed);

  /// Point lookup. Consults the filter first; a filter miss costs nothing.
  /// Returns the entry (possibly a tombstone) if present.
  std::optional<Entry> Get(uint64_t key, IoStats* io) const;

  /// Appends every live entry in [lo, hi] to `out`, charging page reads.
  /// Consults the range filter first.
  void Scan(uint64_t lo, uint64_t hi, std::vector<Entry>* out,
            IoStats* io) const;

  uint64_t size() const { return entries_.size(); }
  uint64_t min_key() const { return entries_.empty() ? 0 : entries_.front().key; }
  uint64_t max_key() const { return entries_.empty() ? 0 : entries_.back().key; }
  const std::vector<Entry>& entries() const { return entries_; }

  /// In-memory filter footprint of this run.
  size_t FilterBits() const;

 private:
  std::vector<Entry> entries_;
  std::unique_ptr<Filter> point_filter_;
  std::unique_ptr<RangeFilter> range_filter_;
};

}  // namespace bbf::lsm

#endif  // BBF_APPS_LSM_RUN_H_
