#ifndef BBF_APPS_BIO_DEBRUIJN_H_
#define BBF_APPS_BIO_DEBRUIJN_H_

#include <cstdint>
#include <memory>
#include <unordered_set>
#include <vector>

#include "bloom/bloom_filter.h"
#include "bloom/cascading_bloom.h"

namespace bbf::bio {

/// Filter-backed de Bruijn graph representations (§3.2).
///
/// Nodes are canonical k-mers; an edge joins two nodes that overlap in
/// k-1 bases, i.e. neighbours reachable by extending one base left/right.
///
///   * kProbabilistic — Pell et al. [78]: a plain Bloom filter of the
///     k-mer set; navigation admits false-positive nodes, which barely
///     perturbs the large-scale structure until FPR >= ~0.15.
///   * kExactTable — Chikhi & Rizk [25]: Bloom filter + an exact side
///     table of the *critical false positives* (Bloom FPs adjacent to
///     true k-mers), giving an exact navigational representation.
///   * kCascading — Salikhov et al. [84]: the exact side table replaced
///     by a cascading Bloom filter, cutting its memory further.
class DeBruijnGraph {
 public:
  enum class Mode { kProbabilistic, kExactTable, kCascading };

  /// Builds over the distinct canonical k-mers of a dataset.
  DeBruijnGraph(const std::vector<uint64_t>& kmers, int k, Mode mode,
                double bits_per_key);

  /// Node membership as the representation sees it (navigational queries
  /// from true nodes are exact in kExactTable/kCascading modes).
  bool HasNode(uint64_t canonical_kmer) const;

  /// Canonical k-mers reachable by appending one base to the right of
  /// `kmer` (given in its as-stored orientation).
  std::vector<uint64_t> RightNeighbors(uint64_t kmer) const;
  /// Likewise for prepending one base on the left.
  std::vector<uint64_t> LeftNeighbors(uint64_t kmer) const;

  size_t SpaceBits() const;
  size_t critical_fp_count() const { return critical_fps_.size(); }
  int k() const { return k_; }

 private:
  // All 8 potential neighbours (4 right, 4 left) of a k-mer, in canonical
  // form. Used at build time to find critical false positives.
  std::vector<uint64_t> PotentialNeighbors(uint64_t kmer) const;

  int k_;
  Mode mode_;
  uint64_t mask_;
  std::unique_ptr<BloomFilter> bloom_;
  std::unordered_set<uint64_t> critical_fps_;       // kExactTable.
  std::unique_ptr<CascadingBloomFilter> cascade_;   // kCascading.
};

}  // namespace bbf::bio

#endif  // BBF_APPS_BIO_DEBRUIJN_H_
