#include "apps/bio/sequence_index.h"

#include <algorithm>
#include <cmath>
#include <map>
#include <unordered_map>

#include "apps/bio/kmer.h"
#include "util/bits.h"
#include "util/random.h"
#include "workload/generators.h"

namespace bbf::bio {

// ---------------------------------------------------------------------------
// SequenceBloomTree
// ---------------------------------------------------------------------------

SequenceBloomTree::SequenceBloomTree(
    const std::vector<std::vector<uint64_t>>& experiment_kmers,
    double bits_per_kmer)
    : num_experiments_(experiment_kmers.size()) {
  if (!experiment_kmers.empty()) {
    root_ = BuildNode(experiment_kmers, 0,
                      static_cast<uint32_t>(experiment_kmers.size()),
                      bits_per_kmer);
  }
}

int SequenceBloomTree::BuildNode(
    const std::vector<std::vector<uint64_t>>& experiment_kmers,
    uint32_t begin, uint32_t end, double bits_per_kmer) {
  Node node;
  uint64_t total = 0;
  for (uint32_t e = begin; e < end; ++e) total += experiment_kmers[e].size();
  node.filter = std::make_unique<BloomFilter>(
      std::max<uint64_t>(total, 1), bits_per_kmer, 0,
      /*hash_seed=*/0x5B7 + begin * 131 + end);
  for (uint32_t e = begin; e < end; ++e) {
    for (uint64_t km : experiment_kmers[e]) node.filter->Insert(km);
  }
  if (end - begin == 1) {
    node.experiment = static_cast<int>(begin);
  }
  const int index = static_cast<int>(nodes_.size());
  nodes_.push_back(std::move(node));
  if (end - begin > 1) {
    const uint32_t mid = begin + (end - begin) / 2;
    const int left = BuildNode(experiment_kmers, begin, mid, bits_per_kmer);
    const int right = BuildNode(experiment_kmers, mid, end, bits_per_kmer);
    nodes_[index].left = left;
    nodes_[index].right = right;
  }
  return index;
}

void SequenceBloomTree::QueryNode(int node_idx,
                                  const std::vector<uint64_t>& query_kmers,
                                  double theta,
                                  std::vector<ExperimentHit>* hits) const {
  const Node& node = nodes_[node_idx];
  uint64_t present = 0;
  for (uint64_t km : query_kmers) present += node.filter->Contains(km);
  const double fraction =
      query_kmers.empty() ? 0
                          : static_cast<double>(present) / query_kmers.size();
  if (fraction < theta) return;  // Prune: the subtree cannot reach theta.
  if (node.experiment >= 0) {
    hits->push_back(
        ExperimentHit{static_cast<uint32_t>(node.experiment), fraction});
    return;
  }
  QueryNode(node.left, query_kmers, theta, hits);
  QueryNode(node.right, query_kmers, theta, hits);
}

std::vector<ExperimentHit> SequenceBloomTree::Query(
    const std::vector<uint64_t>& query_kmers, double theta) const {
  std::vector<ExperimentHit> hits;
  if (root_ >= 0 && !query_kmers.empty()) {
    QueryNode(root_, query_kmers, theta, &hits);
  }
  return hits;
}

size_t SequenceBloomTree::SpaceBits() const {
  size_t bits = 0;
  for (const Node& n : nodes_) bits += n.filter->SpaceBits();
  return bits;
}

// ---------------------------------------------------------------------------
// MantisIndex
// ---------------------------------------------------------------------------

MantisIndex::MantisIndex(
    const std::vector<std::vector<uint64_t>>& experiment_kmers, double fpr)
    : num_experiments_(experiment_kmers.size()) {
  // Pass 1: per-k-mer experiment bit vectors (the color of each k-mer).
  const size_t words =
      (num_experiments_ + 63) / 64;
  std::unordered_map<uint64_t, std::vector<uint64_t>> colors;
  for (uint32_t e = 0; e < experiment_kmers.size(); ++e) {
    for (uint64_t km : experiment_kmers[e]) {
      auto& bits = colors[km];
      bits.resize(words, 0);
      bits[e >> 6] |= uint64_t{1} << (e & 63);
    }
  }
  // Pass 2: deduplicate colors into classes (the Mantis trick: distinct
  // colors are few because co-occurring k-mers share them).
  std::map<std::vector<uint64_t>, uint32_t> class_ids;
  std::vector<std::pair<uint64_t, uint32_t>> kmer_class;
  kmer_class.reserve(colors.size());
  for (const auto& [km, bits] : colors) {
    const auto [it, inserted] =
        class_ids.emplace(bits, static_cast<uint32_t>(class_ids.size()));
    kmer_class.emplace_back(km, it->second);
  }
  color_classes_.resize(class_ids.size());
  for (const auto& [bits, id] : class_ids) {
    BitVector bv(num_experiments_);
    for (size_t e = 0; e < num_experiments_; ++e) {
      if ((bits[e >> 6] >> (e & 63)) & 1) bv.Set(e);
    }
    color_classes_[id] = std::move(bv);
  }
  // Pass 3: the k-mer -> class-id maplet. fpr == 0 requests key-sized
  // fingerprints (quotient + remainder cover most of the 64-bit hash), so
  // lookups are exact with overwhelming probability — Mantis's exactness.
  const uint64_t n = std::max<size_t>(kmer_class.size(), 1);
  const int q_bits =
      std::max(6, BitWidth(NextPow2(static_cast<uint64_t>(n / 0.9)) - 1));
  const int r_bits =
      fpr > 0 ? std::max(1, static_cast<int>(-std::log2(fpr)))
              : std::min(44, 64 - q_bits);
  const int value_bits = std::max(
      1, BitWidth(color_classes_.empty() ? 1 : color_classes_.size() - 1));
  maplet_ = std::make_unique<QuotientMaplet>(q_bits, r_bits, value_bits);
  for (const auto& [km, id] : kmer_class) maplet_->Insert(km, id);
}

std::vector<uint32_t> MantisIndex::ExperimentsOf(uint64_t kmer) const {
  std::vector<uint32_t> out;
  const auto candidates = maplet_->Lookup(kmer);
  if (candidates.empty()) return out;
  const BitVector& bv = color_classes_[candidates.front()];
  for (size_t e = 0; e < num_experiments_; ++e) {
    if (bv.Get(e)) out.push_back(static_cast<uint32_t>(e));
  }
  return out;
}

std::vector<ExperimentHit> MantisIndex::Query(
    const std::vector<uint64_t>& query_kmers, double theta) const {
  std::vector<ExperimentHit> hits;
  if (query_kmers.empty()) return hits;
  std::vector<uint64_t> per_experiment(num_experiments_, 0);
  for (uint64_t km : query_kmers) {
    const auto candidates = maplet_->Lookup(km);
    if (candidates.empty()) continue;
    const BitVector& bv = color_classes_[candidates.front()];
    for (size_t e = 0; e < num_experiments_; ++e) {
      per_experiment[e] += bv.Get(e);
    }
  }
  for (size_t e = 0; e < num_experiments_; ++e) {
    const double fraction =
        static_cast<double>(per_experiment[e]) / query_kmers.size();
    if (fraction >= theta) {
      hits.push_back(ExperimentHit{static_cast<uint32_t>(e), fraction});
    }
  }
  return hits;
}

size_t MantisIndex::SpaceBits() const {
  size_t bits = maplet_->SpaceBits();
  for (const BitVector& bv : color_classes_) bits += bv.size();
  return bits;
}

// ---------------------------------------------------------------------------
// Synthetic experiments
// ---------------------------------------------------------------------------

std::vector<std::vector<uint64_t>> GenerateExperiments(uint32_t count,
                                                       uint64_t base_len,
                                                       int k, uint64_t seed) {
  const std::string base = GenerateDna(base_len, 0.1, seed);
  SplitMix64 rng(seed * 31 + 7);
  std::vector<std::vector<uint64_t>> out;
  out.reserve(count);
  static constexpr char kBases[] = {'A', 'C', 'G', 'T'};
  for (uint32_t e = 0; e < count; ++e) {
    // Each experiment: a mutated copy of a slice of the base genome plus a
    // unique appendix, so experiments share many but not all k-mers.
    const uint64_t slice_len = base_len / 2 + rng.NextBelow(base_len / 2);
    const uint64_t start = rng.NextBelow(base_len - slice_len + 1);
    std::string dna = base.substr(start, slice_len);
    const uint64_t mutations = slice_len / 100;  // ~1% point mutations.
    for (uint64_t m = 0; m < mutations; ++m) {
      dna[rng.NextBelow(dna.size())] = kBases[rng.NextBelow(4)];
    }
    dna += GenerateDna(base_len / 10, 0.0, seed * 97 + e + 1);
    auto kmers = ExtractKmers(dna, k);
    std::sort(kmers.begin(), kmers.end());
    kmers.erase(std::unique(kmers.begin(), kmers.end()), kmers.end());
    out.push_back(std::move(kmers));
  }
  return out;
}

}  // namespace bbf::bio
