#ifndef BBF_APPS_BIO_KMER_H_
#define BBF_APPS_BIO_KMER_H_

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

namespace bbf::bio {

/// 2-bit DNA base codes. k-mers with k <= 32 pack into one uint64_t.
inline std::optional<uint64_t> EncodeBase(char c) {
  switch (c) {
    case 'A': case 'a': return 0;
    case 'C': case 'c': return 1;
    case 'G': case 'g': return 2;
    case 'T': case 't': return 3;
    default: return std::nullopt;
  }
}

inline char DecodeBase(uint64_t code) { return "ACGT"[code & 3]; }

/// Reverse complement of a packed k-mer.
uint64_t ReverseComplement(uint64_t kmer, int k);

/// Canonical form: min(kmer, revcomp(kmer)) — strand-independent identity,
/// the representation Squeakr/Mantis count under.
inline uint64_t Canonical(uint64_t kmer, int k) {
  const uint64_t rc = ReverseComplement(kmer, k);
  return kmer < rc ? kmer : rc;
}

/// Packs `sv` (length exactly k) into 2-bit codes; nullopt on non-ACGT.
std::optional<uint64_t> EncodeKmer(std::string_view sv);

/// Unpacks a k-mer to its string form.
std::string DecodeKmer(uint64_t kmer, int k);

/// All k-mers of `dna` (canonicalized when `canonical`), skipping windows
/// containing non-ACGT characters.
std::vector<uint64_t> ExtractKmers(std::string_view dna, int k,
                                   bool canonical = true);

}  // namespace bbf::bio

#endif  // BBF_APPS_BIO_KMER_H_
