#include "apps/bio/kmer_counter.h"

#include "apps/bio/kmer.h"

namespace bbf::bio {

KmerCounter::KmerCounter(int k, uint64_t expected_kmers, double fpr)
    : k_(k),
      cqf_(CountingQuotientFilter::ForCapacity(expected_kmers, fpr)) {}

uint64_t KmerCounter::AddSequence(std::string_view dna) {
  uint64_t added = 0;
  for (uint64_t kmer : ExtractKmers(dna, k_, /*canonical=*/true)) {
    if (cqf_.Count(kmer) == 0) ++distinct_;
    if (cqf_.Insert(kmer)) ++added;
  }
  return added;
}

uint64_t KmerCounter::Count(std::string_view kmer) const {
  const auto packed = EncodeKmer(kmer);
  if (!packed.has_value()) return 0;
  return cqf_.Count(Canonical(*packed, k_));
}

uint64_t KmerCounter::CountPacked(uint64_t canonical_kmer) const {
  return cqf_.Count(canonical_kmer);
}

}  // namespace bbf::bio
