#ifndef BBF_APPS_BIO_KMER_COUNTER_H_
#define BBF_APPS_BIO_KMER_COUNTER_H_

#include <cstdint>
#include <string_view>

#include "quotient/quotient_filter.h"

namespace bbf::bio {

/// Squeakr-style k-mer counter [Pandey et al. 2017] (§3.2): counts
/// canonical k-mers of sequencing data in a counting quotient filter.
/// Genomic k-mer spectra are heavily skewed (repeats), which is exactly
/// the distribution the CQF's variable-length counters compress well —
/// experiment E13/E6.
class KmerCounter {
 public:
  /// Capacity for ~`expected_kmers` distinct canonical k-mers with
  /// fingerprint false-positive rate `fpr`.
  KmerCounter(int k, uint64_t expected_kmers, double fpr = 1.0 / 256);

  /// Counts every canonical k-mer of `dna`. Returns how many were added.
  uint64_t AddSequence(std::string_view dna);

  /// Multiplicity of a k-mer given as a string (canonicalized first).
  uint64_t Count(std::string_view kmer) const;
  /// Multiplicity of an already-canonical packed k-mer.
  uint64_t CountPacked(uint64_t canonical_kmer) const;

  int k() const { return k_; }
  uint64_t distinct_estimate() const { return distinct_; }
  size_t SpaceBits() const { return cqf_.SpaceBits(); }
  double LoadFactor() const { return cqf_.LoadFactor(); }

 private:
  int k_;
  CountingQuotientFilter cqf_;
  uint64_t distinct_ = 0;
};

}  // namespace bbf::bio

#endif  // BBF_APPS_BIO_KMER_COUNTER_H_
