#include "apps/bio/debruijn.h"

#include <algorithm>

#include "apps/bio/kmer.h"

namespace bbf::bio {

DeBruijnGraph::DeBruijnGraph(const std::vector<uint64_t>& kmers, int k,
                             Mode mode, double bits_per_key)
    : k_(k),
      mode_(mode),
      mask_(k == 32 ? ~uint64_t{0} : ((uint64_t{1} << (2 * k)) - 1)) {
  std::vector<uint64_t> unique = kmers;
  std::sort(unique.begin(), unique.end());
  unique.erase(std::unique(unique.begin(), unique.end()), unique.end());

  bloom_ = std::make_unique<BloomFilter>(
      std::max<uint64_t>(unique.size(), 1), bits_per_key);
  for (uint64_t km : unique) bloom_->Insert(km);
  if (mode_ == Mode::kProbabilistic) return;

  // Critical false positives: Bloom-positive potential neighbours of true
  // nodes that are not true nodes themselves (Chikhi & Rizk).
  std::unordered_set<uint64_t> truth(unique.begin(), unique.end());
  std::unordered_set<uint64_t> cfps;
  for (uint64_t km : unique) {
    for (uint64_t nb : PotentialNeighbors(km)) {
      if (!truth.contains(nb) && bloom_->Contains(nb)) cfps.insert(nb);
    }
  }
  if (mode_ == Mode::kExactTable) {
    critical_fps_ = std::move(cfps);
  } else {
    // Cascading replacement: exact over cFPs vs true k-mers, the only two
    // populations navigational queries can produce.
    const std::vector<uint64_t> members(cfps.begin(), cfps.end());
    cascade_ = std::make_unique<CascadingBloomFilter>(members, unique,
                                                      bits_per_key, 3);
  }
}

std::vector<uint64_t> DeBruijnGraph::PotentialNeighbors(uint64_t kmer) const {
  std::vector<uint64_t> out;
  out.reserve(8);
  for (uint64_t b = 0; b < 4; ++b) {
    out.push_back(Canonical(((kmer << 2) | b) & mask_, k_));
    out.push_back(
        Canonical((kmer >> 2) | (b << (2 * (k_ - 1))), k_));
  }
  return out;
}

bool DeBruijnGraph::HasNode(uint64_t canonical_kmer) const {
  if (!bloom_->Contains(canonical_kmer)) return false;
  switch (mode_) {
    case Mode::kProbabilistic:
      return true;
    case Mode::kExactTable:
      return !critical_fps_.contains(canonical_kmer);
    case Mode::kCascading:
      return !cascade_->Contains(canonical_kmer);
  }
  return true;
}

std::vector<uint64_t> DeBruijnGraph::RightNeighbors(uint64_t kmer) const {
  std::vector<uint64_t> out;
  for (uint64_t b = 0; b < 4; ++b) {
    const uint64_t nb = Canonical(((kmer << 2) | b) & mask_, k_);
    if (HasNode(nb)) out.push_back(nb);
  }
  return out;
}

std::vector<uint64_t> DeBruijnGraph::LeftNeighbors(uint64_t kmer) const {
  std::vector<uint64_t> out;
  for (uint64_t b = 0; b < 4; ++b) {
    const uint64_t nb =
        Canonical((kmer >> 2) | (b << (2 * (k_ - 1))), k_);
    if (HasNode(nb)) out.push_back(nb);
  }
  return out;
}

size_t DeBruijnGraph::SpaceBits() const {
  size_t bits = bloom_->SpaceBits();
  if (mode_ == Mode::kExactTable) bits += critical_fps_.size() * 2 * k_;
  if (cascade_ != nullptr) bits += cascade_->SpaceBits();
  return bits;
}

}  // namespace bbf::bio
