#ifndef BBF_APPS_BIO_SEQUENCE_INDEX_H_
#define BBF_APPS_BIO_SEQUENCE_INDEX_H_

#include <cstdint>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "bloom/bloom_filter.h"
#include "quotient/quotient_maplet.h"
#include "util/bit_vector.h"

namespace bbf::bio {

/// The experiment-discovery problem (§3.2, Solomon & Kingsford): given a
/// query set of k-mers, return every sequencing experiment containing at
/// least a fraction theta of them.
struct ExperimentHit {
  uint32_t experiment;
  double fraction;  // Fraction of query k-mers present.
};

/// Sequence Bloom Tree [Solomon & Kingsford 2016] (§3.2): a binary tree
/// whose leaves hold one Bloom filter per experiment and whose interior
/// nodes hold Bloom filters of their subtrees' k-mer unions. Queries
/// descend the tree, pruning subtrees whose filter already rules out the
/// theta threshold. Approximate: Bloom false positives can both inflate
/// per-experiment fractions and retain pruned subtrees.
class SequenceBloomTree {
 public:
  /// `experiment_kmers[i]` = the distinct canonical k-mers of experiment i.
  SequenceBloomTree(const std::vector<std::vector<uint64_t>>& experiment_kmers,
                    double bits_per_kmer);

  /// Experiments containing >= theta of `query_kmers` (by this index's
  /// approximate reckoning).
  std::vector<ExperimentHit> Query(const std::vector<uint64_t>& query_kmers,
                                   double theta) const;

  size_t SpaceBits() const;
  size_t num_experiments() const { return num_experiments_; }

 private:
  struct Node {
    std::unique_ptr<BloomFilter> filter;
    int left = -1;    // Child node indexes; -1 for leaves.
    int right = -1;
    int experiment = -1;  // Leaf payload.
  };

  int BuildNode(const std::vector<std::vector<uint64_t>>& experiment_kmers,
                uint32_t begin, uint32_t end, double bits_per_kmer);
  void QueryNode(int node, const std::vector<uint64_t>& query_kmers,
                 double theta, std::vector<ExperimentHit>* hits) const;

  std::vector<Node> nodes_;
  int root_ = -1;
  size_t num_experiments_ = 0;
};

/// Mantis [Pandey et al. 2018] (§3.2): an exact inverted index. Every
/// distinct k-mer maps, through a counting-quotient-filter maplet with
/// key-sized fingerprints, to a *color class* — a deduplicated bit vector
/// naming the experiments that contain it. "Smaller, faster, and exact
/// compared to the SBT".
class MantisIndex {
 public:
  MantisIndex(const std::vector<std::vector<uint64_t>>& experiment_kmers,
              double fpr = 0.0);  // fpr 0 -> key-sized fingerprints (exact).

  std::vector<ExperimentHit> Query(const std::vector<uint64_t>& query_kmers,
                                   double theta) const;

  /// Experiments containing this single k-mer.
  std::vector<uint32_t> ExperimentsOf(uint64_t kmer) const;

  size_t SpaceBits() const;
  size_t num_color_classes() const { return color_classes_.size(); }

 private:
  std::unique_ptr<QuotientMaplet> maplet_;  // k-mer -> color-class id.
  std::vector<BitVector> color_classes_;
  size_t num_experiments_ = 0;
};

/// Synthetic experiment generator: `count` experiments derived from a
/// shared base genome with per-experiment mutations/insertions, yielding
/// realistic k-mer sharing across experiments.
std::vector<std::vector<uint64_t>> GenerateExperiments(uint32_t count,
                                                       uint64_t base_len,
                                                       int k,
                                                       uint64_t seed = 1234);

}  // namespace bbf::bio

#endif  // BBF_APPS_BIO_SEQUENCE_INDEX_H_
