#include "apps/bio/kmer.h"

namespace bbf::bio {

uint64_t ReverseComplement(uint64_t kmer, int k) {
  uint64_t rc = 0;
  for (int i = 0; i < k; ++i) {
    rc = (rc << 2) | (3 - (kmer & 3));  // Complement: A<->T, C<->G.
    kmer >>= 2;
  }
  return rc;
}

std::optional<uint64_t> EncodeKmer(std::string_view sv) {
  uint64_t kmer = 0;
  for (char c : sv) {
    const auto b = EncodeBase(c);
    if (!b.has_value()) return std::nullopt;
    kmer = (kmer << 2) | *b;
  }
  return kmer;
}

std::string DecodeKmer(uint64_t kmer, int k) {
  std::string s(k, 'A');
  for (int i = k - 1; i >= 0; --i) {
    s[i] = DecodeBase(kmer & 3);
    kmer >>= 2;
  }
  return s;
}

std::vector<uint64_t> ExtractKmers(std::string_view dna, int k,
                                   bool canonical) {
  std::vector<uint64_t> kmers;
  if (static_cast<int>(dna.size()) < k) return kmers;
  kmers.reserve(dna.size() - k + 1);
  const uint64_t mask =
      k == 32 ? ~uint64_t{0} : ((uint64_t{1} << (2 * k)) - 1);
  uint64_t window = 0;
  int valid = 0;  // Consecutive valid bases ending here.
  for (char c : dna) {
    const auto b = EncodeBase(c);
    if (!b.has_value()) {
      valid = 0;
      window = 0;
      continue;
    }
    window = ((window << 2) | *b) & mask;
    if (++valid >= k) {
      kmers.push_back(canonical ? Canonical(window, k) : window);
    }
  }
  return kmers;
}

}  // namespace bbf::bio
