#ifndef BBF_WORKLOAD_ZIPF_H_
#define BBF_WORKLOAD_ZIPF_H_

#include <cstdint>
#include <vector>

#include "util/random.h"

namespace bbf {

/// Zipfian rank sampler over {0, ..., n-1}: rank r is drawn with
/// probability proportional to 1/(r+1)^theta. Skewed multiset inputs
/// (§2.6) and skewed query streams (§2.3) both come from this.
class ZipfGenerator {
 public:
  /// Precomputes the CDF; O(n) space, O(log n) per sample.
  ZipfGenerator(uint64_t n, double theta, uint64_t seed = 1);

  /// Draws a rank in [0, n).
  uint64_t Next();

  uint64_t n() const { return cdf_.size(); }

 private:
  SplitMix64 rng_;
  std::vector<double> cdf_;  // cdf_[r] = P(rank <= r).
};

}  // namespace bbf

#endif  // BBF_WORKLOAD_ZIPF_H_
