#include "workload/generators.h"

#include <algorithm>
#include <unordered_set>

#include "util/random.h"
#include "workload/zipf.h"

namespace bbf {

std::vector<uint64_t> GenerateDistinctKeys(uint64_t n, uint64_t seed) {
  std::unordered_set<uint64_t> seen;
  seen.reserve(n * 2);
  std::vector<uint64_t> keys;
  keys.reserve(n);
  SplitMix64 rng(seed);
  while (keys.size() < n) {
    const uint64_t k = rng.Next();
    if (seen.insert(k).second) keys.push_back(k);
  }
  return keys;
}

std::vector<uint64_t> GenerateNegativeKeys(const std::vector<uint64_t>& exclude,
                                           uint64_t n, uint64_t seed) {
  std::unordered_set<uint64_t> excluded(exclude.begin(), exclude.end());
  std::vector<uint64_t> keys;
  keys.reserve(n);
  SplitMix64 rng(seed);
  while (keys.size() < n) {
    const uint64_t k = rng.Next();
    if (!excluded.contains(k)) keys.push_back(k);
  }
  return keys;
}

std::vector<uint64_t> GenerateZipfStream(uint64_t universe, double theta,
                                         uint64_t stream_len, uint64_t seed) {
  const std::vector<uint64_t> keys = GenerateDistinctKeys(universe, seed);
  ZipfGenerator zipf(universe, theta, seed + 1);
  std::vector<uint64_t> stream;
  stream.reserve(stream_len);
  for (uint64_t i = 0; i < stream_len; ++i) stream.push_back(keys[zipf.Next()]);
  return stream;
}

std::vector<std::pair<uint64_t, uint64_t>> GenerateRangeQueries(
    const std::vector<uint64_t>& keys, uint64_t num_queries, uint64_t range_len,
    bool correlated, uint64_t domain, uint64_t seed) {
  SplitMix64 rng(seed);
  std::vector<std::pair<uint64_t, uint64_t>> queries;
  queries.reserve(num_queries);
  for (uint64_t i = 0; i < num_queries; ++i) {
    uint64_t lo;
    if (correlated && !keys.empty()) {
      // Start just past an existing key: high key-query correlation.
      lo = keys[rng.NextBelow(keys.size())] + 1;
    } else {
      lo = rng.NextBelow(domain);
    }
    uint64_t hi = lo + range_len - 1;
    if (hi < lo) hi = ~uint64_t{0};  // Clamp on overflow.
    queries.emplace_back(lo, hi);
  }
  return queries;
}

std::vector<RangeOp> GenerateInterleavedRangeOps(
    const std::vector<uint64_t>& keys, double queries_per_insert,
    double point_frac, uint64_t range_len, uint64_t domain,
    uint64_t seed) {
  SplitMix64 rng(seed);
  std::vector<RangeOp> ops;
  ops.reserve(static_cast<size_t>(keys.size() * (1.0 + queries_per_insert)) +
              1);
  double budget = 0.0;
  for (uint64_t key : keys) {
    ops.push_back({RangeOp::Kind::kInsert, key, key});
    budget += queries_per_insert;
    for (; budget >= 1.0; budget -= 1.0) {
      const uint64_t lo = rng.NextBelow(domain);
      // Scale the point/range coin to 2^32 to keep it integer-exact.
      if (rng.NextBelow(uint64_t{1} << 32) <
          static_cast<uint64_t>(point_frac * 4294967296.0)) {
        ops.push_back({RangeOp::Kind::kPointQuery, lo, lo});
      } else {
        uint64_t hi = lo + range_len - 1;
        if (hi < lo) hi = ~uint64_t{0};  // Clamp on overflow.
        ops.push_back({RangeOp::Kind::kRangeQuery, lo, hi});
      }
    }
  }
  return ops;
}

std::vector<uint64_t> GenerateAdversarialRepeatQueries(
    const std::vector<uint64_t>& inserted, uint64_t hot_count, double hot_frac,
    uint64_t stream_len, uint64_t seed) {
  const std::vector<uint64_t> hot =
      GenerateNegativeKeys(inserted, std::max<uint64_t>(hot_count, 1), seed);
  std::unordered_set<uint64_t> excluded(inserted.begin(), inserted.end());
  SplitMix64 rng(seed + 1);
  std::vector<uint64_t> stream;
  stream.reserve(stream_len);
  while (stream.size() < stream_len) {
    if (rng.NextDouble() < hot_frac) {
      stream.push_back(hot[rng.NextBelow(hot.size())]);
    } else {
      const uint64_t k = rng.Next();
      if (excluded.contains(k)) continue;  // Keep the stream all-negative.
      stream.push_back(k);
    }
  }
  return stream;
}

std::vector<uint64_t> GenerateShiftingZipfStream(uint64_t universe,
                                                 double theta,
                                                 uint64_t stream_len,
                                                 uint64_t shift_every,
                                                 uint64_t seed) {
  const std::vector<uint64_t> keys = GenerateDistinctKeys(universe, seed);
  ZipfGenerator zipf(universe, theta, seed + 1);
  if (shift_every == 0) shift_every = stream_len;
  std::vector<uint64_t> stream;
  stream.reserve(stream_len);
  uint64_t rotation = 0;
  for (uint64_t i = 0; i < stream_len; ++i) {
    // Jump by ~1/3 of the universe so each shift lands the hot ranks on
    // genuinely different keys (a +1 rotation would only nudge them).
    if (i > 0 && i % shift_every == 0) rotation += universe / 3 + 1;
    stream.push_back(keys[(zipf.Next() + rotation) % universe]);
  }
  return stream;
}

std::vector<std::string> GenerateUrls(uint64_t n, uint64_t seed) {
  SplitMix64 rng(seed);
  std::vector<std::string> urls;
  urls.reserve(n);
  for (uint64_t i = 0; i < n; ++i) {
    urls.push_back("http://host" + std::to_string(rng.NextBelow(1u << 20)) +
                   ".example/path" + std::to_string(rng.Next()));
  }
  return urls;
}

std::string GenerateDna(uint64_t len, double repeat_frac, uint64_t seed) {
  static constexpr char kBases[] = {'A', 'C', 'G', 'T'};
  SplitMix64 rng(seed);
  std::string s;
  s.reserve(len);
  while (s.size() < len) {
    const bool repeat =
        s.size() > 1000 && rng.NextDouble() < repeat_frac;
    if (repeat) {
      // Re-paste a segment from earlier in the sequence.
      const uint64_t seg_len = 200 + rng.NextBelow(800);
      const uint64_t start = rng.NextBelow(s.size() - std::min<uint64_t>(
                                                          s.size() - 1, seg_len));
      s.append(s, start, std::min<uint64_t>(seg_len, len - s.size()));
    } else {
      const uint64_t run = std::min<uint64_t>(1000, len - s.size());
      for (uint64_t i = 0; i < run; ++i) s.push_back(kBases[rng.NextBelow(4)]);
    }
  }
  return s;
}

}  // namespace bbf
