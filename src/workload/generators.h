#ifndef BBF_WORKLOAD_GENERATORS_H_
#define BBF_WORKLOAD_GENERATORS_H_

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

namespace bbf {

/// `n` distinct pseudo-random 64-bit keys (deterministic for a seed).
std::vector<uint64_t> GenerateDistinctKeys(uint64_t n, uint64_t seed = 42);

/// `n` keys disjoint from `exclude` — negative-query material for FPR
/// measurement. `exclude` must be the output of GenerateDistinctKeys with a
/// different seed-space; disjointness is enforced with a hash set.
std::vector<uint64_t> GenerateNegativeKeys(const std::vector<uint64_t>& exclude,
                                           uint64_t n, uint64_t seed = 43);

/// A Zipf-skewed multiset stream over `universe` distinct keys:
/// returns `stream_len` keys where key ranks follow Zipf(theta). Used for
/// counting-filter experiments (§2.6).
std::vector<uint64_t> GenerateZipfStream(uint64_t universe, double theta,
                                         uint64_t stream_len,
                                         uint64_t seed = 44);

/// Integer range queries [lo, lo+len-1]. If `correlated` is true, each
/// query starts just above a randomly chosen key (the hard case Grafite is
/// robust to, §2.5); otherwise starts are uniform over the key domain.
std::vector<std::pair<uint64_t, uint64_t>> GenerateRangeQueries(
    const std::vector<uint64_t>& keys, uint64_t num_queries, uint64_t range_len,
    bool correlated, uint64_t domain, uint64_t seed = 45);

/// One operation in an interleaved insert/point/range schedule — the
/// dynamic-range-filter workload (DESIGN.md §16) where inserts arrive
/// online while point and range queries stream between them, so static
/// families must rebuild mid-stream and a dynamic family must not lose a
/// key.
struct RangeOp {
  enum class Kind { kInsert, kPointQuery, kRangeQuery };
  Kind kind;
  uint64_t lo;  // The key for kInsert/kPointQuery; range start otherwise.
  uint64_t hi;  // Inclusive range end; == lo for the other kinds.
};

/// An interleaved schedule over `keys`: every key is inserted exactly once
/// in order, and between inserts ~`queries_per_insert` queries are woven
/// in — a `point_frac` fraction are point lookups, the rest ranges of
/// length `range_len` with uniform starts over `domain`.
std::vector<RangeOp> GenerateInterleavedRangeOps(
    const std::vector<uint64_t>& keys, double queries_per_insert,
    double point_frac, uint64_t range_len, uint64_t domain,
    uint64_t seed = 50);

/// Adversarial-repeat query stream (§2.3): an attacker who discovers
/// false positives replays them. The stream mixes `hot_frac` queries
/// drawn from a small pool of `hot_count` fixed negative keys (disjoint
/// from `inserted`) with fresh uniform negatives — the workload the
/// repeated-FP sketch and the Tuner's migrate-to-adaptive policy exist
/// for.
std::vector<uint64_t> GenerateAdversarialRepeatQueries(
    const std::vector<uint64_t>& inserted, uint64_t hot_count, double hot_frac,
    uint64_t stream_len, uint64_t seed = 48);

/// A Zipf stream whose hot spot drifts: every `shift_every` samples the
/// rank-to-key mapping rotates by one universe step, so the keys that
/// were hot go cold and a different shard heats up. Exercises the
/// Tuner's shard-skew / rebalance policy.
std::vector<uint64_t> GenerateShiftingZipfStream(uint64_t universe,
                                                 double theta,
                                                 uint64_t stream_len,
                                                 uint64_t shift_every,
                                                 uint64_t seed = 49);

/// Synthetic URL-like strings ("http://hostNNN.example/pathMMM").
std::vector<std::string> GenerateUrls(uint64_t n, uint64_t seed = 46);

/// Synthetic DNA string of length `len` over {A,C,G,T}; if `repeat_frac`
/// > 0, that fraction of the sequence is composed of re-pasted earlier
/// segments, yielding skewed k-mer multiplicities as in real genomes.
std::string GenerateDna(uint64_t len, double repeat_frac = 0.2,
                        uint64_t seed = 47);

}  // namespace bbf

#endif  // BBF_WORKLOAD_GENERATORS_H_
