#include "workload/zipf.h"

#include <algorithm>
#include <cmath>

namespace bbf {

ZipfGenerator::ZipfGenerator(uint64_t n, double theta, uint64_t seed)
    : rng_(seed) {
  cdf_.resize(n);
  double acc = 0;
  for (uint64_t r = 0; r < n; ++r) {
    acc += 1.0 / std::pow(static_cast<double>(r + 1), theta);
    cdf_[r] = acc;
  }
  const double norm = 1.0 / acc;
  for (double& c : cdf_) c *= norm;
}

uint64_t ZipfGenerator::Next() {
  const double u = rng_.NextDouble();
  const auto it = std::lower_bound(cdf_.begin(), cdf_.end(), u);
  return it == cdf_.end() ? cdf_.size() - 1
                          : static_cast<uint64_t>(it - cdf_.begin());
}

}  // namespace bbf
