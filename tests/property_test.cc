// Additional property and failure-injection tests across modules:
// boundary values, exhaustion paths, and differential checks against
// reference implementations.

#include <algorithm>
#include <cstdint>
#include <functional>
#include <memory>
#include <set>
#include <sstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "bloom/bloom_filter.h"
#include "test_seed.h"
#include "core/sharded_filter.h"
#include "cuckoo/cuckoo_filter.h"
#include "expandable/taffy_filter.h"
#include "quotient/quotient_filter.h"
#include "range/surf.h"
#include "util/bit_vector.h"
#include "util/elias_fano.h"
#include "util/random.h"
#include "workload/generators.h"

namespace bbf {
namespace {

// --- Elias-Fano extremes ----------------------------------------------------

TEST(EliasFanoEdge, HandlesHugeValues) {
  const std::vector<uint64_t> v = {0, 1, (uint64_t{1} << 62),
                                   (uint64_t{1} << 62) + 1,
                                   ~uint64_t{0} - 1};
  EliasFano ef(v);
  for (size_t i = 0; i < v.size(); ++i) ASSERT_EQ(ef.Get(i), v[i]);
  EXPECT_EQ(*ef.NextGeq(2), 2u);  // Index of 1<<62.
  EXPECT_EQ(ef.Get(*ef.NextGeq(~uint64_t{0} - 1)), ~uint64_t{0} - 1);
  EXPECT_FALSE(ef.NextGeq(~uint64_t{0}).has_value());
}

TEST(EliasFanoEdge, AllEqualElements) {
  const std::vector<uint64_t> v(100, 42);
  EliasFano ef(v);
  for (size_t i = 0; i < v.size(); ++i) ASSERT_EQ(ef.Get(i), 42u);
  EXPECT_EQ(*ef.NextGeq(42), 0u);
  EXPECT_EQ(*ef.NextGeq(0), 0u);
  EXPECT_FALSE(ef.NextGeq(43).has_value());
  EXPECT_TRUE(ef.ContainsInRange(42, 42));
  EXPECT_FALSE(ef.ContainsInRange(43, 100));
}

TEST(BitVectorEdge, SixtyFourBitFieldAtWordBoundary) {
  BitVector bv(256);
  const uint64_t v = 0xDEADBEEFCAFEBABEull;
  bv.SetBits(64, 64, v);
  EXPECT_EQ(bv.GetBits(64, 64), v);
  bv.SetBits(60, 64, v);  // Straddles two words.
  EXPECT_EQ(bv.GetBits(60, 64), v);
}

// --- Taffy void-fingerprint exhaustion ---------------------------------------

TEST(TaffyExhaustion, VoidFingerprintsNeverFalseNegative) {
  // 4-bit fingerprints die after 4 doublings; entries become void and get
  // duplicated into both children. Membership must survive regardless.
  TaffyFilter f(4, 4);
  const uint64_t seed = TestSeed(111);
  BBF_ANNOUNCE_SEED(seed);
  const auto keys = GenerateDistinctKeys(4000, seed);
  for (uint64_t k : keys) ASSERT_TRUE(f.Insert(k));
  EXPECT_GE(f.expansions(), 6);
  for (uint64_t k : keys) ASSERT_TRUE(f.Contains(k)) << k;
  EXPECT_TRUE(f.table().CheckInvariants());
}

TEST(TaffyExhaustion, FprDegradesGracefullyNotCatastrophically) {
  TaffyFilter f(4, 4);
  const uint64_t seed = TestSeed(112);
  BBF_ANNOUNCE_SEED(seed);
  const auto keys = GenerateDistinctKeys(4000, seed);
  for (uint64_t k : keys) ASSERT_TRUE(f.Insert(k));
  const auto negatives = GenerateNegativeKeys(keys, 20000, seed + 1);
  uint64_t fp = 0;
  for (uint64_t k : negatives) fp += f.Contains(k);
  // Old generations are void (FPR ~ their density); fresh keys still have
  // fingerprints, so the filter is degraded but not all-positive.
  EXPECT_LT(static_cast<double>(fp) / negatives.size(), 0.9);
}

// --- Serialization fuzz -------------------------------------------------------

TEST(SerializationFuzz, EveryTruncationPointRejectsOrRoundTrips) {
  QuotientFilter f(8, 6);
  for (uint64_t k = 0; k < 150; ++k) f.Insert(k * 977);
  std::stringstream ss;
  f.Save(ss);
  const std::string data = ss.str();
  // Truncate at many points: Load must fail cleanly (no crash, false).
  for (size_t cut = 0; cut + 1 < data.size(); cut += 13) {
    std::stringstream broken(data.substr(0, cut));
    QuotientFilter g(6, 4);
    EXPECT_FALSE(g.Load(broken)) << "cut at " << cut;
  }
  // And the intact stream still round-trips afterwards.
  std::stringstream ok(data);
  QuotientFilter g(6, 4);
  ASSERT_TRUE(g.Load(ok));
  for (uint64_t k = 0; k < 150; ++k) ASSERT_TRUE(g.Contains(k * 977));
}

// --- SuRF string ranges vs reference ----------------------------------------

TEST(SurfStrings, RangeQueriesNeverMissAgainstReference) {
  // Random variable-length strings, including prefix-of-each-other pairs.
  const uint64_t seed = TestSeed(114);
  BBF_ANNOUNCE_SEED(seed);
  SplitMix64 rng(seed);
  std::set<std::string> key_set;
  while (key_set.size() < 3000) {
    std::string s;
    const int len = 1 + static_cast<int>(rng.NextBelow(10));
    for (int i = 0; i < len; ++i) {
      s.push_back(static_cast<char>('a' + rng.NextBelow(6)));
    }
    key_set.insert(s);
    if (rng.NextBelow(3) == 0 && s.size() > 1) {
      key_set.insert(s.substr(0, s.size() - 1));  // Deliberate prefixes.
    }
  }
  const std::vector<std::string> keys(key_set.begin(), key_set.end());
  SurfFilter f(keys, SurfFilter::SuffixMode::kReal, 8);
  // Point queries: every key present.
  for (const auto& k : keys) ASSERT_TRUE(f.MayContainKey(k)) << k;
  // Random ranges: no false negatives vs std::set.
  for (int q = 0; q < 5000; ++q) {
    std::string lo;
    std::string hi;
    const int len = 1 + static_cast<int>(rng.NextBelow(8));
    for (int i = 0; i < len; ++i) {
      lo.push_back(static_cast<char>('a' + rng.NextBelow(6)));
      hi.push_back(static_cast<char>('a' + rng.NextBelow(6)));
    }
    if (hi < lo) std::swap(lo, hi);
    const auto it = key_set.lower_bound(lo);
    const bool truly_nonempty = it != key_set.end() && *it <= hi;
    if (truly_nonempty) {
      ASSERT_TRUE(f.MayContainStringRange(lo, hi))
          << "[" << lo << "," << hi << "]";
    }
  }
}

TEST(SurfStrings, EmptyRangesUsuallyRejected) {
  const uint64_t seed = TestSeed(115);
  BBF_ANNOUNCE_SEED(seed);
  SplitMix64 rng(seed);
  std::set<std::string> key_set;
  while (key_set.size() < 3000) {
    std::string s = "key";
    for (int i = 0; i < 8; ++i) {
      s.push_back(static_cast<char>('a' + rng.NextBelow(26)));
    }
    key_set.insert(s);
  }
  const std::vector<std::string> keys(key_set.begin(), key_set.end());
  SurfFilter f(keys, SurfFilter::SuffixMode::kReal, 8);
  uint64_t fp = 0;
  uint64_t total = 0;
  for (int q = 0; q < 5000; ++q) {
    std::string lo = "key";
    for (int i = 0; i < 8; ++i) {
      lo.push_back(static_cast<char>('a' + rng.NextBelow(26)));
    }
    std::string hi = lo;
    hi.back() = static_cast<char>(hi.back() + 1);
    const auto it = key_set.lower_bound(lo);
    if (it != key_set.end() && *it <= hi) continue;
    ++total;
    fp += f.MayContainStringRange(lo, hi);
  }
  ASSERT_GT(total, 4000u);
  EXPECT_LT(static_cast<double>(fp) / total, 0.1);
}

// --- Batch/scalar parity ------------------------------------------------------

// Every family with a batch override must satisfy two contracts:
//  * ContainsMany agrees bit-for-bit with a loop of Contains on mixed
//    positive/negative queries (at any sub-batch size, including the
//    tile-remainder path);
//  * InsertMany leaves the filter in a state observationally equal to
//    sequential Inserts and returns the same success count.
void CheckBatchParity(
    const std::function<std::unique_ptr<Filter>()>& make, uint64_t n,
    uint64_t default_seed) {
  const uint64_t seed = TestSeed(default_seed);
  BBF_ANNOUNCE_SEED(seed);
  const auto keys = GenerateDistinctKeys(n, seed);
  const auto negatives = GenerateNegativeKeys(keys, n, seed + 1);
  std::vector<uint64_t> queries;
  queries.reserve(2 * n);
  for (size_t i = 0; i < keys.size(); ++i) {
    queries.push_back(keys[i]);
    queries.push_back(negatives[i]);
  }

  auto scalar = make();
  size_t scalar_inserted = 0;
  for (uint64_t k : keys) scalar_inserted += scalar->Insert(k);

  auto batched = make();
  EXPECT_EQ(batched->InsertMany(keys), scalar_inserted);
  EXPECT_EQ(batched->NumKeys(), scalar->NumKeys());

  // Bit-for-bit lookup parity on the sequentially built filter.
  std::vector<uint8_t> out(queries.size(), 2);
  scalar->ContainsMany(queries, out.data());
  for (size_t i = 0; i < queries.size(); ++i) {
    ASSERT_LE(out[i], 1u);
    ASSERT_EQ(out[i] == 1, scalar->Contains(queries[i])) << "query " << i;
  }
  // Odd sub-batch sizes exercise the partial-tile path.
  for (size_t batch : {size_t{1}, size_t{7}, size_t{33}}) {
    std::vector<uint8_t> chunked(queries.size(), 2);
    for (size_t base = 0; base < queries.size(); base += batch) {
      const size_t len = std::min(batch, queries.size() - base);
      scalar->ContainsMany({queries.data() + base, len},
                           chunked.data() + base);
    }
    ASSERT_EQ(chunked, out) << "batch size " << batch;
  }
  // Empty batches are a no-op.
  scalar->ContainsMany(std::span<const uint64_t>{}, nullptr);
  EXPECT_EQ(scalar->InsertMany(std::span<const uint64_t>{}), 0u);

  // The batch-built filter answers exactly like the scalar-built one.
  std::vector<uint8_t> out_batched(queries.size(), 2);
  batched->ContainsMany(queries, out_batched.data());
  ASSERT_EQ(out_batched, out);
  // No false negatives through the batch path.
  for (size_t i = 0; i < keys.size(); ++i) ASSERT_EQ(out[2 * i], 1u);
}

TEST(BatchParity, BloomFilter) {
  CheckBatchParity([] { return std::make_unique<BloomFilter>(5000, 10.0); },
                   5000, 300);
}

TEST(BatchParity, BlockedBloomFilter) {
  CheckBatchParity(
      [] { return std::make_unique<BlockedBloomFilter>(5000, 10.0); }, 5000,
      310);
}

TEST(BatchParity, CuckooFilter) {
  CheckBatchParity([] { return std::make_unique<CuckooFilter>(5000, 12); },
                   5000, 320);
}

TEST(BatchParity, QuotientFilter) {
  CheckBatchParity([] { return std::make_unique<QuotientFilter>(13, 9); },
                   5000, 330);
}

TEST(BatchParity, ShardedFilter) {
  CheckBatchParity(
      [] {
        return std::make_unique<ShardedFilter>(
            5000, 8, [](uint64_t cap) -> std::unique_ptr<Filter> {
              return std::make_unique<QuotientFilter>(
                  QuotientFilter::ForCapacity(cap, 0.01));
            });
      },
      5000, 340);
}

TEST(BatchParity, QuotientFullFilterReturnPath) {
  // 2^6 slots at 0.94 max load: sequential Inserts start returning false
  // partway through; InsertMany must report the identical count and state.
  const uint64_t seed = TestSeed(350);
  BBF_ANNOUNCE_SEED(seed);
  const auto keys = GenerateDistinctKeys(100, seed);
  QuotientFilter scalar(6, 8);
  size_t scalar_inserted = 0;
  for (uint64_t k : keys) scalar_inserted += scalar.Insert(k);
  ASSERT_LT(scalar_inserted, keys.size());  // The full path triggered.
  ASSERT_GT(scalar_inserted, 0u);

  QuotientFilter batched(6, 8);
  EXPECT_EQ(batched.InsertMany(keys), scalar_inserted);
  EXPECT_EQ(batched.NumKeys(), scalar.NumKeys());
  for (uint64_t k : keys) ASSERT_EQ(batched.Contains(k), scalar.Contains(k));
  ASSERT_TRUE(batched.table().CheckInvariants());
}

TEST(BatchParity, CuckooFullFilterReturnPath) {
  // A tiny table driven far past capacity: kicks fail, the stash fills,
  // and Insert starts refusing. Batch inserts replay the same sequence
  // (same kick RNG), so counts and membership match exactly.
  const uint64_t seed = TestSeed(360);
  BBF_ANNOUNCE_SEED(seed);
  const auto keys = GenerateDistinctKeys(300, seed);
  CuckooFilter scalar(64, 8);
  size_t scalar_inserted = 0;
  for (uint64_t k : keys) scalar_inserted += scalar.Insert(k);
  ASSERT_LT(scalar_inserted, keys.size());

  CuckooFilter batched(64, 8);
  EXPECT_EQ(batched.InsertMany(keys), scalar_inserted);
  EXPECT_EQ(batched.NumKeys(), scalar.NumKeys());
  for (uint64_t k : keys) ASSERT_EQ(batched.Contains(k), scalar.Contains(k));
}

// --- Quotient filter: full differential sweep at several loads ---------------

class QfLoadSweep : public ::testing::TestWithParam<double> {};

TEST_P(QfLoadSweep, MembershipExactUpToTargetLoad) {
  const double target = GetParam();
  QuotientFilter f(12, 10);
  const uint64_t seed = TestSeed(116);
  BBF_ANNOUNCE_SEED(seed);
  const auto keys = GenerateDistinctKeys(
      static_cast<uint64_t>(target * (1u << 12)), seed);
  for (uint64_t k : keys) ASSERT_TRUE(f.Insert(k));
  EXPECT_NEAR(f.LoadFactor(), target, 0.01);
  for (uint64_t k : keys) ASSERT_TRUE(f.Contains(k));
  ASSERT_TRUE(f.table().CheckInvariants());
  // Delete everything; the table must return to pristine.
  for (uint64_t k : keys) ASSERT_TRUE(f.Erase(k));
  EXPECT_EQ(f.table().num_used_slots(), 0u);
  ASSERT_TRUE(f.table().CheckInvariants());
}

INSTANTIATE_TEST_SUITE_P(Loads, QfLoadSweep,
                         ::testing::Values(0.1, 0.3, 0.5, 0.7, 0.9));

}  // namespace
}  // namespace bbf
