// Cross-filter contract tests: every point filter behind the Filter
// interface must satisfy the same basic guarantees (no false negatives,
// sane accounting, Class()-consistent Erase behaviour). One parameterized
// driver covers the whole zoo.

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include <gtest/gtest.h>

#include "bloom/bloom_filter.h"
#include "core/factory.h"
#include "core/registry.h"
#include "core/sharded_filter.h"
#include "cuckoo/cuckoo_filter.h"
#include "quotient/quotient_filter.h"
#include "test_seed.h"
#include "workload/generators.h"

namespace bbf {
namespace {

constexpr uint64_t kN = 8000;
constexpr double kEpsilon = 0.01;

struct FilterCase {
  std::string name;
  std::function<std::unique_ptr<Filter>()> make;
};

/// The contract zoo is driven by the registry, not a hand-maintained
/// list: every factory-constructible family automatically enters the
/// contract the moment it is registered. The composed ShardedFilter
/// wrapper is appended by hand (it is a combinator over a factory, not a
/// registered family itself).
std::vector<FilterCase> AllDynamicish() {
  std::vector<FilterCase> cases;
  for (std::string_view tag : RegisteredFilterTags()) {
    const FilterEntry* entry = FindFilterEntry(tag);
    if (entry == nullptr || !entry->in_factory) continue;  // Snapshot-only.
    cases.push_back({std::string(tag), [tag] {
                       return CreateFilter(tag, kN, kEpsilon);
                     }});
  }
  cases.push_back({"sharded-cuckoo", [] {
                     return std::make_unique<ShardedFilter>(
                         kN, 4, [](uint64_t capacity) {
                           return std::make_unique<CuckooFilter>(capacity, 12);
                         });
                   }});
  return cases;
}

// Tripwire: the registry's factory surface IS the contract's coverage,
// so a family added to registry.cc without updating this list fails here
// — the reviewer then confirms the new family really passes the contract
// (it does, automatically, via AllDynamicish) and records it below.
TEST(ContractCoverage, FactoryNamesMatchExpectedList) {
  const std::vector<std::string_view> expected = {
      "adaptive-cuckoo", "adaptive-quotient", "blocked-bloom",     "bloom",
      "chained-quotient", "counting-bloom",   "counting-quotient", "cuckoo",
      "dleft",            "dleft-counting",   "expanding-quotient",
      "memento",          "prefix",           "quotient",          "ring",
      "rsqf",             "scalable-bloom",   "taffy",
      "vector-quotient",
  };
  const std::vector<std::string_view> actual = FactoryFilterNames();
  EXPECT_EQ(actual, expected)
      << "factory surface changed: update this tripwire AND confirm the "
         "contract + FPR regression suites cover the new family";
}

class FilterContract : public ::testing::TestWithParam<size_t> {
 protected:
  FilterCase Case() const { return AllDynamicish()[GetParam()]; }
};

TEST_P(FilterContract, NoFalseNegatives) {
  const auto filter = Case().make();
  const auto keys = GenerateDistinctKeys(kN, 101);
  for (uint64_t k : keys) ASSERT_TRUE(filter->Insert(k)) << Case().name;
  for (uint64_t k : keys) {
    ASSERT_TRUE(filter->Contains(k)) << Case().name << " lost " << k;
  }
}

TEST_P(FilterContract, NumKeysTracksInserts) {
  const auto filter = Case().make();
  const auto keys = GenerateDistinctKeys(1000, 102);
  for (uint64_t k : keys) ASSERT_TRUE(filter->Insert(k));
  EXPECT_EQ(filter->NumKeys(), keys.size()) << Case().name;
}

TEST_P(FilterContract, FprBelowTenPercent) {
  const auto filter = Case().make();
  const auto keys = GenerateDistinctKeys(kN, 103);
  for (uint64_t k : keys) ASSERT_TRUE(filter->Insert(k));
  const auto negatives = GenerateNegativeKeys(keys, 20000, 104);
  uint64_t fp = 0;
  for (uint64_t k : negatives) fp += filter->Contains(k);
  EXPECT_LT(static_cast<double>(fp) / negatives.size(), 0.1) << Case().name;
}

TEST_P(FilterContract, SpaceAccountingIsPositiveAndFinite) {
  const auto filter = Case().make();
  filter->Insert(1);
  EXPECT_GT(filter->SpaceBits(), 0u) << Case().name;
  EXPECT_LT(filter->BitsPerKey(), 1e7) << Case().name;
}

TEST_P(FilterContract, EraseConsistentWithClass) {
  const auto filter = Case().make();
  const auto keys = GenerateDistinctKeys(500, 105);
  for (uint64_t k : keys) ASSERT_TRUE(filter->Insert(k));
  const bool erased = filter->Erase(keys[0]);
  if (filter->Class() == FilterClass::kDynamic) {
    EXPECT_TRUE(erased) << Case().name
                        << ": dynamic filters must support Erase";
    EXPECT_EQ(filter->NumKeys(), keys.size() - 1) << Case().name;
  } else {
    EXPECT_FALSE(erased) << Case().name
                         << ": non-dynamic filters must refuse Erase";
  }
}

TEST_P(FilterContract, BatchLookupMatchesScalarLookup) {
  const auto filter = Case().make();
  const auto keys = GenerateDistinctKeys(2000, 106);
  filter->InsertMany(keys);
  const auto negatives = GenerateNegativeKeys(keys, 2000, 107);
  std::vector<uint64_t> queries = keys;
  queries.insert(queries.end(), negatives.begin(), negatives.end());
  std::vector<uint8_t> batched(queries.size());
  filter->ContainsMany(queries, batched.data());
  for (size_t i = 0; i < queries.size(); ++i) {
    ASSERT_EQ(filter->Contains(queries[i]), batched[i] != 0)
        << Case().name << " diverged on query " << i;
  }
}

TEST_P(FilterContract, CountIsAtLeastMultiplicity) {
  const auto filter = Case().make();
  uint64_t inserted = 0;
  for (int i = 0; i < 5; ++i) inserted += filter->Insert(777);
  EXPECT_GE(filter->Count(777), std::min<uint64_t>(inserted, 1))
      << Case().name;
}

INSTANTIATE_TEST_SUITE_P(
    AllFilters, FilterContract,
    ::testing::Range<size_t>(0, AllDynamicish().size()),
    [](const ::testing::TestParamInfo<size_t>& info) {
      std::string name = AllDynamicish()[info.param].name;
      for (char& c : name) {
        if (c == '-') c = '_';
      }
      return name;
    });

// --- InsertMany partial-failure contract at capacity -------------------------
//
// Each hot family, sized far below the key count so inserts start failing
// mid-batch. The contract: InsertMany's returned count equals the count a
// sequential-Insert twin reports (batch paths consume hashing and kick RNG
// in the same per-filter order), and every key the twin acknowledged is
// queryable in the batch-built filter — the count is never an overcount of
// what the filter actually serves.
std::vector<FilterCase> HotFamiliesAtCapacity() {
  return {
      // Bloom variants never refuse; their "capacity" is an FPR design
      // point, so the contract degenerates to count == keys.size().
      {"bloom", [] { return std::make_unique<BloomFilter>(64, 8.0); }},
      {"blocked-bloom",
       [] { return std::make_unique<BlockedBloomFilter>(64, 8.0); }},
      {"cuckoo", [] { return std::make_unique<CuckooFilter>(64, 8); }},
      {"quotient", [] { return std::make_unique<QuotientFilter>(6, 8); }},
      {"sharded-cuckoo",
       [] {
         // Default chain policy with tiny shards: the batch path chains
         // generations mid-batch and eventually rejects.
         SaturationConfig config;
         config.max_generations = 2;
         return std::make_unique<ShardedFilter>(
             64, 4,
             [](uint64_t capacity) {
               return std::make_unique<CuckooFilter>(capacity, 8);
             },
             config);
       }},
  };
}

TEST(InsertManyAtCapacity, CountMatchesSequentialTwinAndQueryability) {
  const uint64_t seed = TestSeed(600);
  BBF_ANNOUNCE_SEED(seed);
  const auto keys = GenerateDistinctKeys(1000, seed);
  for (const FilterCase& c : HotFamiliesAtCapacity()) {
    SCOPED_TRACE(c.name);
    auto twin = c.make();
    std::vector<uint64_t> acked;
    for (uint64_t k : keys) {
      if (twin->Insert(k)) acked.push_back(k);
    }
    ASSERT_GT(acked.size(), 0u);
    if (c.name != "bloom" && c.name != "blocked-bloom") {
      ASSERT_LT(acked.size(), keys.size())
          << "sizing must force partial failure";
    }

    auto batched = c.make();
    EXPECT_EQ(batched->InsertMany(keys), acked.size());
    EXPECT_EQ(batched->NumKeys(), twin->NumKeys());
    // Every key the count claims is actually queryable afterward.
    uint64_t missing = 0;
    for (uint64_t k : acked) missing += !batched->Contains(k);
    EXPECT_EQ(missing, 0u);
  }
}

}  // namespace
}  // namespace bbf
