// Statistical FPR regression suite: every factory-constructible family is
// built for a configured epsilon, loaded to its design point, and probed
// with a large negative stream. The measured false-positive count must
// stay below a binomial upper bound on 1.5x the configured epsilon —
// slack for fingerprint-sizing granularity (families round fingerprints
// to whole bits) plus sampling noise, but tight enough that a sizing
// regression (one fingerprint bit lost, a broken hash stream, an
// expansion path that erodes fingerprints) trips it.
//
// The bound: with M negatives and true rate p = 1.5*eps, the FP count is
// Binomial(M, p); we reject only above mean + 3*sigma (normal
// approximation, one-sided ~0.1% false-alarm rate per family). Seeds run
// through TestSeed so a trip replays with BBF_TEST_SEED=<n>.

#include <cmath>
#include <cstdint>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include <gtest/gtest.h>

#include "bloom/bloom_filter.h"
#include "core/factory.h"
#include "core/registry.h"
#include "test_seed.h"
#include "workload/generators.h"

namespace bbf {
namespace {

constexpr uint64_t kN = 20000;        // Keys inserted per family.
constexpr uint64_t kNegatives = 200000;  // Negative probes per family.
constexpr double kEpsilon = 0.01;     // Configured FPR target.
constexpr double kSlack = 1.5;        // Allowed sizing granularity.

/// mean + 3 sigma of Binomial(m, p): the acceptance threshold on the
/// false-positive count.
double BinomialUpperBound(uint64_t m, double p) {
  const double mean = static_cast<double>(m) * p;
  return mean + 3.0 * std::sqrt(mean * (1.0 - p));
}

/// Inserts `keys` (tolerating a small admission shortfall near the design
/// point), then counts false positives over `negatives` via the batch
/// path. Keys that failed to insert stay out of the FP accounting:
/// a negative is only "false positive" against what the filter admitted.
uint64_t MeasureFalsePositives(Filter& filter,
                               const std::vector<uint64_t>& keys,
                               const std::vector<uint64_t>& negatives,
                               size_t* admitted_out) {
  size_t admitted = 0;
  for (uint64_t k : keys) admitted += filter.Insert(k);
  *admitted_out = admitted;
  std::vector<uint8_t> out(negatives.size());
  filter.ContainsMany(negatives, out.data());
  uint64_t fp = 0;
  for (uint8_t o : out) fp += o;
  return fp;
}

class FprRegression : public ::testing::TestWithParam<size_t> {
 public:
  static std::vector<std::string> Families() {
    std::vector<std::string> families;
    for (std::string_view tag : RegisteredFilterTags()) {
      const FilterEntry* entry = FindFilterEntry(tag);
      if (entry != nullptr && entry->in_factory) {
        families.emplace_back(tag);
      }
    }
    return families;
  }
};

TEST_P(FprRegression, MeasuredFprWithinConfiguredBudget) {
  const std::string family = Families()[GetParam()];
  const uint64_t seed = TestSeed(4242);
  BBF_ANNOUNCE_SEED(seed);
  SCOPED_TRACE(family);

  auto filter = CreateFilter(family, kN, kEpsilon);
  ASSERT_NE(filter, nullptr) << family;

  const auto keys = GenerateDistinctKeys(kN, seed);
  const auto negatives = GenerateNegativeKeys(keys, kNegatives, seed + 1);
  size_t admitted = 0;
  const uint64_t fp =
      MeasureFalsePositives(*filter, keys, negatives, &admitted);
  ASSERT_GE(admitted, kN * 9 / 10)
      << family << " refused too many inserts at its design point";

  const double bound = BinomialUpperBound(kNegatives, kSlack * kEpsilon);
  EXPECT_LE(static_cast<double>(fp), bound)
      << family << ": measured fpr "
      << static_cast<double>(fp) / kNegatives << " vs configured " << kEpsilon
      << " (allowed " << kSlack << "x + 3 sigma = " << bound / kNegatives
      << ")";
}

INSTANTIATE_TEST_SUITE_P(
    AllFactoryFamilies, FprRegression,
    ::testing::Range<size_t>(0, FprRegression::Families().size()),
    [](const ::testing::TestParamInfo<size_t>& info) {
      std::string name = FprRegression::Families()[info.param];
      for (char& c : name) {
        if (c == '-') c = '_';
      }
      return name;
    });

// Negative control: the suite must have teeth. A Bloom filter starved to
// ~3 bits/key has a true FPR far above 1.5 * 1%, so the same bound MUST
// trip — if it doesn't, the harness is broken, not the filters.
TEST(FprRegressionControl, StarvedBloomTripsTheBound) {
  const uint64_t seed = TestSeed(4243);
  BBF_ANNOUNCE_SEED(seed);
  BloomFilter starved(kN, /*bits_per_key=*/3.0);
  const auto keys = GenerateDistinctKeys(kN, seed);
  const auto negatives = GenerateNegativeKeys(keys, kNegatives, seed + 1);
  size_t admitted = 0;
  const uint64_t fp =
      MeasureFalsePositives(starved, keys, negatives, &admitted);
  ASSERT_EQ(admitted, kN);
  EXPECT_GT(static_cast<double>(fp),
            BinomialUpperBound(kNegatives, kSlack * kEpsilon))
      << "a 3-bits/key Bloom filter passing the 1% bound means the "
         "regression harness lost its teeth";
}

}  // namespace
}  // namespace bbf
