// Statistical FPR regression suite: every factory-constructible family is
// built for a configured epsilon, loaded to its design point, and probed
// with a large negative stream. The measured false-positive count must
// stay below a binomial upper bound on 1.5x the configured epsilon —
// slack for fingerprint-sizing granularity (families round fingerprints
// to whole bits) plus sampling noise, but tight enough that a sizing
// regression (one fingerprint bit lost, a broken hash stream, an
// expansion path that erodes fingerprints) trips it.
//
// The bound: with M negatives and true rate p = 1.5*eps, the FP count is
// Binomial(M, p); we reject only above mean + 3*sigma (normal
// approximation, one-sided ~0.1% false-alarm rate per family). Seeds run
// through TestSeed so a trip replays with BBF_TEST_SEED=<n>.

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <cstdio>
#include <memory>
#include <set>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "bloom/bloom_filter.h"
#include "core/factory.h"
#include "core/registry.h"
#include "range/grafite.h"
#include "range/memento.h"
#include "range/prefix_bloom_range.h"
#include "range/range_filter.h"
#include "range/rosetta.h"
#include "range/snarf.h"
#include "range/surf.h"
#include "test_seed.h"
#include "util/random.h"
#include "workload/generators.h"

namespace bbf {
namespace {

constexpr uint64_t kN = 20000;        // Keys inserted per family.
constexpr uint64_t kNegatives = 200000;  // Negative probes per family.
constexpr double kEpsilon = 0.01;     // Configured FPR target.
constexpr double kSlack = 1.5;        // Allowed sizing granularity.

/// mean + 3 sigma of Binomial(m, p): the acceptance threshold on the
/// false-positive count.
double BinomialUpperBound(uint64_t m, double p) {
  const double mean = static_cast<double>(m) * p;
  return mean + 3.0 * std::sqrt(mean * (1.0 - p));
}

/// Inserts `keys` (tolerating a small admission shortfall near the design
/// point), then counts false positives over `negatives` via the batch
/// path. Keys that failed to insert stay out of the FP accounting:
/// a negative is only "false positive" against what the filter admitted.
uint64_t MeasureFalsePositives(Filter& filter,
                               const std::vector<uint64_t>& keys,
                               const std::vector<uint64_t>& negatives,
                               size_t* admitted_out) {
  size_t admitted = 0;
  for (uint64_t k : keys) admitted += filter.Insert(k);
  *admitted_out = admitted;
  std::vector<uint8_t> out(negatives.size());
  filter.ContainsMany(negatives, out.data());
  uint64_t fp = 0;
  for (uint8_t o : out) fp += o;
  return fp;
}

class FprRegression : public ::testing::TestWithParam<size_t> {
 public:
  static std::vector<std::string> Families() {
    std::vector<std::string> families;
    for (std::string_view tag : RegisteredFilterTags()) {
      const FilterEntry* entry = FindFilterEntry(tag);
      if (entry != nullptr && entry->in_factory) {
        families.emplace_back(tag);
      }
    }
    return families;
  }
};

TEST_P(FprRegression, MeasuredFprWithinConfiguredBudget) {
  const std::string family = Families()[GetParam()];
  const uint64_t seed = TestSeed(4242);
  BBF_ANNOUNCE_SEED(seed);
  SCOPED_TRACE(family);

  auto filter = CreateFilter(family, kN, kEpsilon);
  ASSERT_NE(filter, nullptr) << family;

  const auto keys = GenerateDistinctKeys(kN, seed);
  const auto negatives = GenerateNegativeKeys(keys, kNegatives, seed + 1);
  size_t admitted = 0;
  const uint64_t fp =
      MeasureFalsePositives(*filter, keys, negatives, &admitted);
  ASSERT_GE(admitted, kN * 9 / 10)
      << family << " refused too many inserts at its design point";

  const double bound = BinomialUpperBound(kNegatives, kSlack * kEpsilon);
  EXPECT_LE(static_cast<double>(fp), bound)
      << family << ": measured fpr "
      << static_cast<double>(fp) / kNegatives << " vs configured " << kEpsilon
      << " (allowed " << kSlack << "x + 3 sigma = " << bound / kNegatives
      << ")";
}

INSTANTIATE_TEST_SUITE_P(
    AllFactoryFamilies, FprRegression,
    ::testing::Range<size_t>(0, FprRegression::Families().size()),
    [](const ::testing::TestParamInfo<size_t>& info) {
      std::string name = FprRegression::Families()[info.param];
      for (char& c : name) {
        if (c == '-') c = '_';
      }
      return name;
    });

// --- Range-family FPR regression (§2.5 / DESIGN.md §16) -------------------
//
// Every range family is configured to target epsilon ~= 1% on short
// (length-16) range queries, loaded with kN keys, and probed with
// kNegatives ranges verified empty against the exact key set. The same
// 1.5x mean + 3 sigma binomial bound gates the measured FP count. Range
// starts are uniform here; the correlated workload — the one that breaks
// trie-shaped filters — is the separate negative control below.

constexpr uint64_t kRangeLen = 16;

enum class RangeKind { kPrefixBloom, kGrafite, kSnarf, kRosetta, kSurfBase,
                       kSurfHash, kSurfReal, kMemento };

const char* RangeKindName(RangeKind kind) {
  switch (kind) {
    case RangeKind::kPrefixBloom: return "PrefixBloom";
    case RangeKind::kGrafite: return "Grafite";
    case RangeKind::kSnarf: return "Snarf";
    case RangeKind::kRosetta: return "Rosetta";
    case RangeKind::kSurfBase: return "SurfBase";
    case RangeKind::kSurfHash: return "SurfHash";
    case RangeKind::kSurfReal: return "SurfReal";
    case RangeKind::kMemento: return "Memento";
  }
  return "Unknown";
}

// Parameters per family chosen so the design range-FPR at length 16 is
// ~1% (fingerprint/level granularity permitting — some families can only
// bracket it from below).
std::unique_ptr<RangeFilter> MakeRangeFilter(
    RangeKind kind, const std::vector<uint64_t>& sorted_keys) {
  switch (kind) {
    case RangeKind::kPrefixBloom:
      // Length-16 ranges span <= 2 prefixes at 48 bits; 12 bits/key Bloom
      // gives ~0.4% per probe.
      return std::make_unique<PrefixBloomRangeFilter>(sorted_keys, 48, 12.0);
    case RangeKind::kGrafite:
      // Collision chance ~ n * (L + 1) / 2^reduced_bits ~= 0.8%.
      return std::make_unique<GrafiteRangeFilter>(sorted_keys, 26);
    case RangeKind::kSnarf:
      // 2^-7 per-point slack ~= 0.8% for short ranges on uniform keys.
      return std::make_unique<SnarfRangeFilter>(sorted_keys, 7);
    case RangeKind::kRosetta:
      // 5 levels cover dyadic nodes of length-16 ranges.
      return std::make_unique<RosettaRangeFilter>(sorted_keys, 5, 36.0);
    case RangeKind::kSurfBase:
      return std::make_unique<SurfFilter>(sorted_keys,
                                          SurfFilter::SuffixMode::kBase, 0);
    case RangeKind::kSurfHash:
      return std::make_unique<SurfFilter>(sorted_keys,
                                          SurfFilter::SuffixMode::kHash, 8);
    case RangeKind::kSurfReal:
      return std::make_unique<SurfFilter>(sorted_keys,
                                          SurfFilter::SuffixMode::kReal, 8);
    case RangeKind::kMemento: {
      auto f = std::make_unique<MementoFilter>(
          MementoFilter::ForCapacity(sorted_keys.size(), kEpsilon));
      for (uint64_t k : sorted_keys) f->AddKey(k);
      return f;
    }
  }
  return nullptr;
}

/// `count` ranges of length `len` verified empty against `key_set`.
/// Correlated starts begin right after a random stored key (the
/// trie-hostile workload); uncorrelated starts are uniform.
std::vector<std::pair<uint64_t, uint64_t>> EmptyRanges(
    const std::vector<uint64_t>& keys, const std::set<uint64_t>& key_set,
    uint64_t count, uint64_t len, bool correlated, SplitMix64& rng) {
  std::vector<std::pair<uint64_t, uint64_t>> out;
  out.reserve(count);
  while (out.size() < count) {
    const uint64_t lo =
        correlated ? keys[rng.NextBelow(keys.size())] + 1 : rng.Next();
    const uint64_t hi = lo + len - 1;
    if (hi < lo) continue;  // Overflow wrap: skip.
    const auto it = key_set.lower_bound(lo);
    if (it != key_set.end() && *it <= hi) continue;  // Not empty.
    out.emplace_back(lo, hi);
  }
  return out;
}

uint64_t CountRangeFalsePositives(
    const RangeFilter& f,
    const std::vector<std::pair<uint64_t, uint64_t>>& ranges) {
  uint64_t fp = 0;
  for (const auto& [lo, hi] : ranges) fp += f.MayContainRange(lo, hi);
  return fp;
}

class RangeFprRegression : public ::testing::TestWithParam<RangeKind> {};

TEST_P(RangeFprRegression, MeasuredRangeFprWithinBudget) {
  const uint64_t seed = TestSeed(4244);
  BBF_ANNOUNCE_SEED(seed);
  SCOPED_TRACE(RangeKindName(GetParam()));

  auto keys = GenerateDistinctKeys(kN, seed);
  std::sort(keys.begin(), keys.end());
  const std::set<uint64_t> key_set(keys.begin(), keys.end());
  const auto filter = MakeRangeFilter(GetParam(), keys);
  ASSERT_NE(filter, nullptr);

  SplitMix64 rng(seed + 1);
  const auto ranges = EmptyRanges(keys, key_set, kNegatives, kRangeLen,
                                  /*correlated=*/false, rng);
  const uint64_t fp = CountRangeFalsePositives(*filter, ranges);
  // SuRF's base and hash-suffix modes cannot express a 1% range FPR on
  // uniform 64-bit keys: the trie truncates to ~2-byte distinguishing
  // prefixes, so every stored key shadows a 2^48-wide swath and ~22% of
  // the space answers true regardless of suffix bits (hash suffixes only
  // sharpen point queries). Their gate is a pinned structural ceiling —
  // a regression past it still trips — while every tunable family is held
  // to the configured epsilon.
  const bool structural = GetParam() == RangeKind::kSurfBase ||
                          GetParam() == RangeKind::kSurfHash;
  const double design_p = structural ? 0.25 : kSlack * kEpsilon;
  const double bound = BinomialUpperBound(kNegatives, design_p);
  EXPECT_LE(static_cast<double>(fp), bound)
      << RangeKindName(GetParam()) << ": measured range fpr "
      << static_cast<double>(fp) / kNegatives << " vs allowed "
      << bound / kNegatives
      << (structural ? " (structural prefix-coverage ceiling)"
                     : " (1.5x configured epsilon + 3 sigma)");
}

INSTANTIATE_TEST_SUITE_P(
    AllRangeFamilies, RangeFprRegression,
    ::testing::Values(RangeKind::kPrefixBloom, RangeKind::kGrafite,
                      RangeKind::kSnarf, RangeKind::kRosetta,
                      RangeKind::kSurfBase, RangeKind::kSurfHash,
                      RangeKind::kSurfReal, RangeKind::kMemento),
    [](const ::testing::TestParamInfo<RangeKind>& info) {
      return RangeKindName(info.param);
    });

// Negative control for the range suite: correlated queries (starts right
// after stored keys) are the documented failure mode of trie-shaped
// filters — SuRF admits nearly everything because the query shares a long
// prefix with a stored key, and Rosetta's dyadic decomposition loses most
// of its filtering power. This test PRINTS the degradation table so the
// numbers land in CI logs (E27 context) but gates only the families that
// claim correlation robustness: Memento (exact same-prefix answers from
// sorted memento lists) and Grafite (reduced-universe hashing is
// order-preserving but correlation-free).
TEST(RangeFprCorrelatedControl, DocumentsTrieDegradationGatesRobustFamilies) {
  const uint64_t seed = TestSeed(4245);
  BBF_ANNOUNCE_SEED(seed);
  constexpr uint64_t kControlQueries = 50000;

  auto keys = GenerateDistinctKeys(kN, seed);
  std::sort(keys.begin(), keys.end());
  const std::set<uint64_t> key_set(keys.begin(), keys.end());
  SplitMix64 rng(seed + 1);
  const auto uncorrelated = EmptyRanges(keys, key_set, kControlQueries,
                                        kRangeLen, /*correlated=*/false, rng);
  const auto correlated = EmptyRanges(keys, key_set, kControlQueries,
                                      kRangeLen, /*correlated=*/true, rng);

  std::printf("%-12s %12s %12s %8s\n", "family", "uncorr_fpr", "corr_fpr",
              "ratio");
  for (RangeKind kind :
       {RangeKind::kPrefixBloom, RangeKind::kGrafite, RangeKind::kSnarf,
        RangeKind::kRosetta, RangeKind::kSurfBase, RangeKind::kSurfHash,
        RangeKind::kSurfReal, RangeKind::kMemento}) {
    const auto filter = MakeRangeFilter(kind, keys);
    ASSERT_NE(filter, nullptr);
    const double u =
        static_cast<double>(CountRangeFalsePositives(*filter, uncorrelated)) /
        kControlQueries;
    const double c =
        static_cast<double>(CountRangeFalsePositives(*filter, correlated)) /
        kControlQueries;
    const double ratio = u > 0 ? c / u : (c > 0 ? 1e9 : 1.0);
    std::printf("%-12s %12.5f %12.5f %8.1f\n", RangeKindName(kind), u, c,
                ratio);
    ::testing::Test::RecordProperty(
        std::string(RangeKindName(kind)) + "_correlated_fpr", c);
    if (kind == RangeKind::kMemento || kind == RangeKind::kGrafite) {
      const double bound =
          BinomialUpperBound(kControlQueries, kSlack * kEpsilon);
      EXPECT_LE(c * kControlQueries, bound)
          << RangeKindName(kind)
          << " claims correlation robustness but measured " << c;
    }
  }
}

// Negative control: the suite must have teeth. A Bloom filter starved to
// ~3 bits/key has a true FPR far above 1.5 * 1%, so the same bound MUST
// trip — if it doesn't, the harness is broken, not the filters.
TEST(FprRegressionControl, StarvedBloomTripsTheBound) {
  const uint64_t seed = TestSeed(4243);
  BBF_ANNOUNCE_SEED(seed);
  BloomFilter starved(kN, /*bits_per_key=*/3.0);
  const auto keys = GenerateDistinctKeys(kN, seed);
  const auto negatives = GenerateNegativeKeys(keys, kNegatives, seed + 1);
  size_t admitted = 0;
  const uint64_t fp =
      MeasureFalsePositives(starved, keys, negatives, &admitted);
  ASSERT_EQ(admitted, kN);
  EXPECT_GT(static_cast<double>(fp),
            BinomialUpperBound(kNegatives, kSlack * kEpsilon))
      << "a 3-bits/key Bloom filter passing the 1% bound means the "
         "regression harness lost its teeth";
}

}  // namespace
}  // namespace bbf
