// Integration tests for the mini LSM-tree storage engine (§3.1 / E9):
// correctness against a reference std::map model, filter effectiveness,
// Monkey allocation, tiering vs leveling, and range-filter I/O savings.

#include <cstdint>
#include <map>
#include <optional>
#include <vector>

#include <gtest/gtest.h>

#include "apps/lsm/lsm_tree.h"
#include "test_seed.h"
#include "util/random.h"
#include "workload/generators.h"

namespace bbf::lsm {
namespace {

LsmOptions SmallOptions() {
  LsmOptions o;
  o.memtable_entries = 256;
  o.size_ratio = 4;
  return o;
}

TEST(LsmTree, PutGetRoundTrip) {
  LsmTree db(SmallOptions());
  db.Put(1, 100);
  db.Put(2, 200);
  EXPECT_EQ(db.Get(1), std::optional<uint64_t>(100));
  EXPECT_EQ(db.Get(2), std::optional<uint64_t>(200));
  EXPECT_EQ(db.Get(3), std::nullopt);
}

TEST(LsmTree, OverwriteAndDelete) {
  LsmTree db(SmallOptions());
  db.Put(1, 100);
  db.Put(1, 101);
  EXPECT_EQ(db.Get(1), std::optional<uint64_t>(101));
  db.Delete(1);
  EXPECT_EQ(db.Get(1), std::nullopt);
}

class LsmModelTest : public ::testing::TestWithParam<bool> {};

TEST_P(LsmModelTest, RandomOpsMatchReferenceModel) {
  LsmOptions o = SmallOptions();
  o.tiering = GetParam();
  LsmTree db(o);
  std::map<uint64_t, uint64_t> ref;
  const uint64_t seed = TestSeed(33);
  BBF_ANNOUNCE_SEED(seed);
  SplitMix64 rng(seed);
  for (int op = 0; op < 30000; ++op) {
    const uint64_t key = rng.NextBelow(4000);
    const double dice = rng.NextDouble();
    if (dice < 0.6) {
      const uint64_t value = rng.Next();
      db.Put(key, value);
      ref[key] = value;
    } else if (dice < 0.8) {
      db.Delete(key);
      ref.erase(key);
    } else {
      const auto got = db.Get(key);
      const auto it = ref.find(key);
      if (it == ref.end()) {
        ASSERT_EQ(got, std::nullopt) << "op " << op << " key " << key;
      } else {
        ASSERT_EQ(got, std::optional<uint64_t>(it->second))
            << "op " << op << " key " << key;
      }
    }
  }
  // Full sweep at the end.
  for (const auto& [k, v] : ref) {
    ASSERT_EQ(db.Get(k), std::optional<uint64_t>(v));
  }
}

INSTANTIATE_TEST_SUITE_P(LevelingAndTiering, LsmModelTest,
                         ::testing::Values(false, true),
                         [](const ::testing::TestParamInfo<bool>& info) {
                           return info.param ? "Tiering" : "Leveling";
                         });

TEST(LsmTree, ScanMatchesReference) {
  LsmOptions o = SmallOptions();
  o.range_filter = RangeFilterKind::kGrafite;
  LsmTree db(o);
  std::map<uint64_t, uint64_t> ref;
  const uint64_t seed = TestSeed(34);
  BBF_ANNOUNCE_SEED(seed);
  SplitMix64 rng(seed);
  for (int i = 0; i < 20000; ++i) {
    const uint64_t key = rng.NextBelow(1u << 20);
    db.Put(key, key * 2);
    ref[key] = key * 2;
  }
  for (int q = 0; q < 500; ++q) {
    const uint64_t lo = rng.NextBelow(1u << 20);
    const uint64_t hi = lo + rng.NextBelow(5000);
    const auto got = db.Scan(lo, hi);
    std::vector<std::pair<uint64_t, uint64_t>> expect;
    for (auto it = ref.lower_bound(lo); it != ref.end() && it->first <= hi;
         ++it) {
      expect.emplace_back(it->first, it->second);
    }
    ASSERT_EQ(got, expect) << "range [" << lo << "," << hi << "]";
  }
}

TEST(LsmTree, FiltersCutNegativeLookupIos) {
  LsmOptions with;
  with.memtable_entries = 1024;
  with.point_filter = PointFilterKind::kBloom;
  with.point_bits_per_key = 12;
  LsmOptions without = with;
  without.point_filter = PointFilterKind::kNone;

  LsmTree db_with(with);
  LsmTree db_without(without);
  const uint64_t seed = TestSeed(21);
  BBF_ANNOUNCE_SEED(seed);
  const auto keys = GenerateDistinctKeys(100000, seed);
  for (uint64_t k : keys) {
    db_with.Put(k, 1);
    db_without.Put(k, 1);
  }
  const auto negatives = GenerateNegativeKeys(keys, 5000, seed + 1);
  db_with.ResetIo();
  db_without.ResetIo();
  for (uint64_t k : negatives) {
    db_with.Get(k);
    db_without.Get(k);
  }
  // Without filters every consulted run costs a read; with filters almost
  // none do.
  EXPECT_LT(db_with.io().data_reads * 20, db_without.io().data_reads);
}

TEST(LsmTree, MonkeyAllocationBeatsUniformOnNegativeLookups) {
  LsmOptions uniform;
  uniform.memtable_entries = 512;  // More levels: Monkey's win grows with L.
  uniform.point_bits_per_key = 8;
  uniform.allocation = FilterAllocation::kUniform;
  LsmOptions monkey = uniform;
  monkey.allocation = FilterAllocation::kMonkey;

  LsmTree db_u(uniform);
  LsmTree db_m(monkey);
  const uint64_t seed = TestSeed(23);
  BBF_ANNOUNCE_SEED(seed);
  const auto keys = GenerateDistinctKeys(200000, seed);
  for (uint64_t k : keys) {
    db_u.Put(k, 1);
    db_m.Put(k, 1);
  }
  const auto negatives = GenerateNegativeKeys(keys, 20000, seed + 1);
  db_u.ResetIo();
  db_m.ResetIo();
  for (uint64_t k : negatives) {
    db_u.Get(k);
    db_m.Get(k);
  }
  // Monkey: sum of false-probe rates converges instead of growing with
  // the number of levels.
  EXPECT_LT(db_m.io().false_probes, db_u.io().false_probes);
  // At comparable filter memory (within 2x).
  EXPECT_LT(db_m.TotalFilterBits(), db_u.TotalFilterBits() * 2);
}

TEST(LsmTree, RangeFilterCutsEmptyScanIos) {
  LsmOptions with;
  with.memtable_entries = 1024;
  with.range_filter = RangeFilterKind::kGrafite;
  with.range_bits_per_key = 14;
  LsmOptions without = with;
  without.range_filter = RangeFilterKind::kNone;

  LsmTree db_with(with);
  LsmTree db_without(without);
  const uint64_t seed = TestSeed(35);
  BBF_ANNOUNCE_SEED(seed);
  SplitMix64 rng(seed);
  // Sparse keys so short scans are usually empty.
  for (int i = 0; i < 100000; ++i) {
    const uint64_t k = rng.Next() & ~uint64_t{0xFFF};
    db_with.Put(k, 1);
    db_without.Put(k, 1);
  }
  db_with.ResetIo();
  db_without.ResetIo();
  for (int q = 0; q < 2000; ++q) {
    const uint64_t lo = rng.Next() | 1;  // Avoid the key grid.
    db_with.Scan(lo, lo + 64);
    db_without.Scan(lo, lo + 64);
  }
  EXPECT_LT(db_with.io().data_reads * 5, db_without.io().data_reads);
}

TEST(LsmTree, TieringWritesLessThanLeveling) {
  LsmOptions level_opts = SmallOptions();
  LsmOptions tier_opts = SmallOptions();
  tier_opts.tiering = true;
  LsmTree leveled(level_opts);
  LsmTree tiered(tier_opts);
  const uint64_t seed = TestSeed(25);
  BBF_ANNOUNCE_SEED(seed);
  const auto keys = GenerateDistinctKeys(50000, seed);
  for (uint64_t k : keys) {
    leveled.Put(k, 1);
    tiered.Put(k, 1);
  }
  EXPECT_LT(tiered.WriteAmplification(), leveled.WriteAmplification());
}

class LsmFilterKinds : public ::testing::TestWithParam<PointFilterKind> {};

TEST_P(LsmFilterKinds, AllPointFilterKindsAreCorrect) {
  LsmOptions o = SmallOptions();
  o.point_filter = GetParam();
  LsmTree db(o);
  const uint64_t seed = TestSeed(26);
  BBF_ANNOUNCE_SEED(seed);
  const auto keys = GenerateDistinctKeys(20000, seed);
  for (uint64_t k : keys) db.Put(k, k ^ 0xF00);
  for (size_t i = 0; i < keys.size(); i += 7) {
    ASSERT_EQ(db.Get(keys[i]), std::optional<uint64_t>(keys[i] ^ 0xF00));
  }
}

INSTANTIATE_TEST_SUITE_P(
    Kinds, LsmFilterKinds,
    ::testing::Values(PointFilterKind::kNone, PointFilterKind::kBloom,
                      PointFilterKind::kBlockedBloom, PointFilterKind::kXor,
                      PointFilterKind::kRibbon, PointFilterKind::kCuckoo,
                      PointFilterKind::kQuotient),
    [](const ::testing::TestParamInfo<PointFilterKind>& info) {
      switch (info.param) {
        case PointFilterKind::kNone: return "None";
        case PointFilterKind::kBloom: return "Bloom";
        case PointFilterKind::kBlockedBloom: return "BlockedBloom";
        case PointFilterKind::kXor: return "Xor";
        case PointFilterKind::kRibbon: return "Ribbon";
        case PointFilterKind::kCuckoo: return "Cuckoo";
        case PointFilterKind::kQuotient: return "Quotient";
      }
      return "Unknown";
    });

class LsmRangeKinds : public ::testing::TestWithParam<RangeFilterKind> {};

TEST_P(LsmRangeKinds, AllRangeFilterKindsPreserveScans) {
  LsmOptions o = SmallOptions();
  o.range_filter = GetParam();
  LsmTree db(o);
  std::map<uint64_t, uint64_t> ref;
  const uint64_t seed = TestSeed(27);
  BBF_ANNOUNCE_SEED(seed);
  SplitMix64 rng(seed);
  for (int i = 0; i < 10000; ++i) {
    const uint64_t k = rng.NextBelow(1u << 24);
    db.Put(k, k + 1);
    ref[k] = k + 1;
  }
  for (int q = 0; q < 300; ++q) {
    const uint64_t lo = rng.NextBelow(1u << 24);
    const uint64_t hi = lo + rng.NextBelow(10000);
    const auto got = db.Scan(lo, hi);
    std::vector<std::pair<uint64_t, uint64_t>> expect;
    for (auto it = ref.lower_bound(lo); it != ref.end() && it->first <= hi;
         ++it) {
      expect.emplace_back(it->first, it->second);
    }
    ASSERT_EQ(got, expect);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Kinds, LsmRangeKinds,
    ::testing::Values(RangeFilterKind::kNone, RangeFilterKind::kPrefixBloom,
                      RangeFilterKind::kSurf, RangeFilterKind::kRosetta,
                      RangeFilterKind::kSnarf, RangeFilterKind::kGrafite,
                      RangeFilterKind::kMemento),
    [](const ::testing::TestParamInfo<RangeFilterKind>& info) {
      switch (info.param) {
        case RangeFilterKind::kNone: return "None";
        case RangeFilterKind::kPrefixBloom: return "PrefixBloom";
        case RangeFilterKind::kSurf: return "Surf";
        case RangeFilterKind::kRosetta: return "Rosetta";
        case RangeFilterKind::kSnarf: return "Snarf";
        case RangeFilterKind::kGrafite: return "Grafite";
        case RangeFilterKind::kMemento: return "Memento";
      }
      return "Unknown";
    });

}  // namespace
}  // namespace bbf::lsm
