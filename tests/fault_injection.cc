#include "fault_injection.h"

#include <algorithm>
#include <fstream>
#include <iterator>
#include <sstream>
#include <utility>

#include "util/random.h"
#include "util/serialize.h"

namespace bbf {
namespace fault {
namespace {

std::string Label(const char* kind, uint64_t detail) {
  return std::string(kind) + "@" + std::to_string(detail);
}

void PutU64(std::string* blob, size_t offset, uint64_t v) {
  for (int i = 0; i < 8 && offset + i < blob->size(); ++i) {
    (*blob)[offset + i] = static_cast<char>((v >> (8 * i)) & 0xFF);
  }
}

void PutU32(std::string* blob, size_t offset, uint32_t v) {
  for (int i = 0; i < 4 && offset + i < blob->size(); ++i) {
    (*blob)[offset + i] = static_cast<char>((v >> (8 * i)) & 0xFF);
  }
}

uint64_t GetU64(const std::string& blob, size_t offset) {
  uint64_t v = 0;
  for (int i = 0; i < 8 && offset + i < blob.size(); ++i) {
    v |= static_cast<uint64_t>(static_cast<uint8_t>(blob[offset + i]))
         << (8 * i);
  }
  return v;
}

}  // namespace

std::vector<Corruption> BitFlipCorruptions(const std::string& blob,
                                           uint64_t seed, int count) {
  std::vector<Corruption> out;
  if (blob.empty()) return out;
  SplitMix64 rng(seed);
  for (int i = 0; i < count; ++i) {
    const uint64_t bit = rng.NextBelow(blob.size() * 8);
    Corruption c{Label("bitflip", bit), blob};
    c.blob[bit / 8] ^= static_cast<char>(1u << (bit % 8));
    out.push_back(std::move(c));
  }
  return out;
}

std::vector<Corruption> TruncationsAt(const std::string& blob,
                                      std::vector<size_t> cuts) {
  std::vector<Corruption> out;
  std::sort(cuts.begin(), cuts.end());
  cuts.erase(std::unique(cuts.begin(), cuts.end()), cuts.end());
  for (size_t cut : cuts) {
    if (cut >= blob.size()) continue;
    out.push_back(Corruption{Label("truncate", cut), blob.substr(0, cut)});
  }
  return out;
}

std::vector<Corruption> TruncationCorruptions(const std::string& blob) {
  // Frame layout (DESIGN.md §8): magic(8) version(8) tag_len(8) tag
  // payload_len(8) checksum(8) payload. Cut at every boundary, one byte
  // around each, and a sample of payload interiors.
  const uint64_t tag_len = std::min<uint64_t>(GetU64(blob, 16), blob.size());
  std::vector<size_t> cuts = {0, 7, 8, 16, 23, 24};
  const size_t tag_end = 24 + static_cast<size_t>(tag_len);
  cuts.push_back(tag_end);
  cuts.push_back(tag_end + 8);   // After payload_len.
  cuts.push_back(tag_end + 16);  // After checksum = payload start.
  for (int k = 1; k <= 8; ++k) {
    cuts.push_back(tag_end + 16 + (blob.size() - tag_end) * k / 9);
  }
  if (!blob.empty()) cuts.push_back(blob.size() - 1);
  return TruncationsAt(blob, std::move(cuts));
}

std::vector<Corruption> TornWriteCorruptions(const std::string& blob,
                                             uint64_t seed) {
  std::vector<Corruption> out;
  if (blob.size() < 2) return out;
  SplitMix64 rng(seed);
  for (int i = 0; i < 6; ++i) {
    const size_t frontier = 1 + rng.NextBelow(blob.size() - 1);
    Corruption zeros{Label("torn-zeros", frontier), blob};
    std::fill(zeros.blob.begin() + frontier, zeros.blob.end(), '\0');
    // A tail that was already zeros (or by chance regenerated itself)
    // is not a corruption; replaying it would demand rejection of a
    // byte-identical snapshot.
    if (zeros.blob != blob) out.push_back(std::move(zeros));
    Corruption garbage{Label("torn-garbage", frontier), blob};
    for (size_t j = frontier; j < garbage.blob.size(); ++j) {
      garbage.blob[j] = static_cast<char>(rng.Next());
    }
    if (garbage.blob != blob) out.push_back(std::move(garbage));
  }
  return out;
}

std::vector<Corruption> HostileLengthCorruptions(const std::string& blob) {
  std::vector<Corruption> out;
  if (blob.size() < 40) return out;
  const uint64_t tag_len = std::min<uint64_t>(GetU64(blob, 16), blob.size());
  const size_t payload_len_off = 24 + static_cast<size_t>(tag_len);
  const uint64_t hostile[] = {~uint64_t{0}, kMaxSnapshotPayloadBytes + 1,
                              uint64_t{1} << 62};
  for (uint64_t v : hostile) {
    Corruption tag_bomb{Label("hostile-tag-len", v), blob};
    PutU64(&tag_bomb.blob, 16, v);
    out.push_back(std::move(tag_bomb));
    Corruption payload_bomb{Label("hostile-payload-len", v), blob};
    PutU64(&payload_bomb.blob, payload_len_off, v);
    out.push_back(std::move(payload_bomb));
  }
  return out;
}

std::vector<Corruption> AllCorruptions(const std::string& blob,
                                       uint64_t seed) {
  std::vector<Corruption> out = BitFlipCorruptions(blob, seed, 64);
  for (auto* gen : {&TruncationCorruptions, &HostileLengthCorruptions}) {
    auto more = (*gen)(blob);
    std::move(more.begin(), more.end(), std::back_inserter(out));
  }
  auto torn = TornWriteCorruptions(blob, seed + 1);
  std::move(torn.begin(), torn.end(), std::back_inserter(out));
  return out;
}

std::vector<Corruption> GenericCorruptions(const std::string& blob,
                                           uint64_t seed) {
  std::vector<Corruption> out = BitFlipCorruptions(blob, seed, 32);
  // No layout knowledge: cut at both ends and evenly through the middle.
  std::vector<size_t> cuts = {0};
  for (int k = 1; k <= 8; ++k) cuts.push_back(blob.size() * k / 9);
  if (!blob.empty()) cuts.push_back(blob.size() - 1);
  auto truncs = TruncationsAt(blob, std::move(cuts));
  std::move(truncs.begin(), truncs.end(), std::back_inserter(out));
  auto torn = TornWriteCorruptions(blob, seed + 1);
  std::move(torn.begin(), torn.end(), std::back_inserter(out));
  return out;
}

std::vector<Corruption> ChecksumFlipCorruptions(const std::string& blob,
                                                size_t offset) {
  std::vector<Corruption> out;
  if (offset == SIZE_MAX || offset >= blob.size()) return out;
  const size_t end = std::min(blob.size(), offset + 8);
  for (size_t byte = offset; byte < end; ++byte) {
    Corruption c{Label("checksum-flip", byte - offset), blob};
    c.blob[byte] ^= static_cast<char>(0x01u << ((byte - offset) % 8));
    out.push_back(std::move(c));
  }
  return out;
}

std::vector<Corruption> FrameCorpus(const std::string& blob,
                                    const FrameSpec& spec, uint64_t seed) {
  std::vector<Corruption> out;
  if (blob.empty()) return out;

  // Truncations: every declared boundary, one byte either side, sampled
  // payload interiors, and the last byte (the "almost made it" cut).
  std::vector<size_t> cuts;
  for (size_t b : spec.field_boundaries) {
    if (b > 0) cuts.push_back(b - 1);
    cuts.push_back(b);
    cuts.push_back(b + 1);
  }
  for (int k = 1; k <= 8; ++k) cuts.push_back(blob.size() * k / 9);
  cuts.push_back(blob.size() - 1);
  auto truncs = TruncationsAt(blob, std::move(cuts));
  std::move(truncs.begin(), truncs.end(), std::back_inserter(out));

  // Hostile length/count fields. Both widths are bombed at every declared
  // offset: a receiver must reject from the *field's* cap, whichever
  // width it actually decodes, before buffering toward the value.
  const uint64_t hostile64[] = {~uint64_t{0}, uint64_t{1} << 62,
                                uint64_t{1} << 32, (uint64_t{1} << 20) + 1};
  const uint32_t hostile32[] = {~uint32_t{0}, uint32_t{1} << 30,
                                (uint32_t{64} << 10) + 1};
  for (size_t off : spec.length_field_offsets) {
    for (uint64_t v : hostile64) {
      Corruption c{Label("hostile-len64", off) + "=" + std::to_string(v),
                   blob};
      PutU64(&c.blob, off, v);
      out.push_back(std::move(c));
    }
    for (uint32_t v : hostile32) {
      Corruption c{Label("hostile-len32", off) + "=" + std::to_string(v),
                   blob};
      PutU32(&c.blob, off, v);
      out.push_back(std::move(c));
    }
  }

  auto sums = ChecksumFlipCorruptions(blob, spec.checksum_offset);
  std::move(sums.begin(), sums.end(), std::back_inserter(out));

  auto flips = BitFlipCorruptions(blob, seed, 64);
  std::move(flips.begin(), flips.end(), std::back_inserter(out));
  auto torn = TornWriteCorruptions(blob, seed + 1);
  std::move(torn.begin(), torn.end(), std::back_inserter(out));
  return out;
}

bool ReadFileBytes(const std::string& path, std::string* out) {
  std::ifstream is(path, std::ios::binary);
  if (!is) return false;
  std::ostringstream buf;
  buf << is.rdbuf();
  if (is.bad()) return false;
  *out = std::move(buf).str();
  return true;
}

bool WriteFileBytes(const std::string& path, const std::string& bytes) {
  std::ofstream os(path, std::ios::binary | std::ios::trunc);
  if (!os) return false;
  os.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
  os.flush();
  return os.good();
}

std::vector<std::string> ReplayExpectingRejection(
    const std::vector<Corruption>& corruptions,
    const std::function<bool(const std::string& blob)>& load) {
  std::vector<std::string> accepted;
  for (const Corruption& c : corruptions) {
    if (load(c.blob)) accepted.push_back(c.name);
  }
  return accepted;
}

}  // namespace fault
}  // namespace bbf
