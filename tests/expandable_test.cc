// Tests for the expandable filters: Taffy/InfiniFilter-style variable-
// length fingerprints and the chained-filter strategy (§2.2 / E4).

#include <cstdint>
#include <unordered_set>
#include <vector>

#include <gtest/gtest.h>

#include "expandable/chained_filter.h"
#include "expandable/taffy_filter.h"
#include "quotient/expanding_quotient_filter.h"
#include "util/random.h"
#include "workload/generators.h"

namespace bbf {
namespace {

double MeasureFpr(const Filter& f, const std::vector<uint64_t>& negatives) {
  uint64_t fp = 0;
  for (uint64_t k : negatives) fp += f.Contains(k);
  return static_cast<double>(fp) / negatives.size();
}

TEST(TaffyFilter, BasicRoundTrip) {
  TaffyFilter f(8, 16);
  EXPECT_FALSE(f.Contains(3));
  EXPECT_TRUE(f.Insert(3));
  EXPECT_TRUE(f.Contains(3));
  EXPECT_TRUE(f.Erase(3));
  EXPECT_FALSE(f.Contains(3));
}

TEST(TaffyFilter, NoFalseNegativesAcrossManyExpansions) {
  TaffyFilter f(8, 16);
  const auto keys = GenerateDistinctKeys(100000);
  for (uint64_t k : keys) ASSERT_TRUE(f.Insert(k));
  EXPECT_GE(f.expansions(), 8);
  for (uint64_t k : keys) ASSERT_TRUE(f.Contains(k)) << k;
  EXPECT_TRUE(f.table().CheckInvariants());
}

TEST(TaffyFilter, FprGrowsSlowlyWithExpansions) {
  // InfiniFilter property: FPR grows ~linearly in the number of
  // doublings, not exponentially as with bit sacrifice.
  TaffyFilter taffy(10, 16);
  ExpandingQuotientFilter sacrifice(10, 16);
  const auto keys = GenerateDistinctKeys(200000);
  const auto negatives = GenerateNegativeKeys(keys, 50000);
  for (uint64_t k : keys) {
    ASSERT_TRUE(taffy.Insert(k));
    ASSERT_TRUE(sacrifice.Insert(k));
  }
  ASSERT_GE(taffy.expansions(), 7);
  const double taffy_fpr = MeasureFpr(taffy, negatives);
  const double sacrifice_fpr = MeasureFpr(sacrifice, negatives);
  // Bit sacrifice lost ~8 fingerprint bits (256x FPR); Taffy only pays a
  // small linear factor. Insist on a big separation.
  EXPECT_LT(taffy_fpr * 10, sacrifice_fpr);
  EXPECT_LT(taffy_fpr, 0.01);
}

TEST(TaffyFilter, EraseAfterExpansionUsesShortenedFingerprint) {
  TaffyFilter f(6, 12);
  const auto keys = GenerateDistinctKeys(2000);
  for (uint64_t k : keys) ASSERT_TRUE(f.Insert(k));
  ASSERT_GT(f.expansions(), 0);
  for (uint64_t k : keys) ASSERT_TRUE(f.Erase(k)) << k;
  EXPECT_EQ(f.NumKeys(), 0u);
}

TEST(TaffyFilter, ChurnKeepsInvariants) {
  TaffyFilter f(6, 10);
  std::unordered_multiset<uint64_t> ref;
  SplitMix64 rng(17);
  for (int op = 0; op < 20000; ++op) {
    const uint64_t key = rng.NextBelow(5000);
    if (rng.NextDouble() < 0.6) {
      if (f.Insert(key)) ref.insert(key);
    } else if (ref.contains(key)) {
      ASSERT_TRUE(f.Erase(key)) << op;
      ref.erase(ref.find(key));
    }
    if (op % 1000 == 0) {
      ASSERT_TRUE(f.table().CheckInvariants()) << op;
    }
  }
  for (uint64_t k : std::unordered_set<uint64_t>(ref.begin(), ref.end())) {
    ASSERT_TRUE(f.Contains(k));
  }
}

TEST(ChainedQuotientFilter, GrowsChainWithoutFalseNegatives) {
  ChainedQuotientFilter f(8, 10);
  const auto keys = GenerateDistinctKeys(20000);
  for (uint64_t k : keys) ASSERT_TRUE(f.Insert(k));
  EXPECT_GT(f.chain_length(), 3u);
  for (uint64_t k : keys) ASSERT_TRUE(f.Contains(k));
}

TEST(ChainedQuotientFilter, FprScalesWithChainLength) {
  ChainedQuotientFilter f(8, 12);
  const auto keys = GenerateDistinctKeys(30000);
  for (uint64_t k : keys) ASSERT_TRUE(f.Insert(k));
  const auto negatives = GenerateNegativeKeys(keys, 50000);
  const double fpr = MeasureFpr(f, negatives);
  // Each link contributes ~2^-12; the chain multiplies that.
  EXPECT_LT(fpr, f.chain_length() * (1.0 / 4096) * 3);
}

TEST(ChainedQuotientFilter, EraseSearchesAllLinks) {
  ChainedQuotientFilter f(6, 12);
  const auto keys = GenerateDistinctKeys(2000);
  for (uint64_t k : keys) ASSERT_TRUE(f.Insert(k));
  ASSERT_GT(f.chain_length(), 1u);
  for (uint64_t k : keys) ASSERT_TRUE(f.Erase(k));
  EXPECT_EQ(f.NumKeys(), 0u);
}

}  // namespace
}  // namespace bbf
