// Fault-injection suite for the snapshot layer (DESIGN.md §8): replays
// every snapshot under bit flips, truncations at frame boundaries, torn
// writes, and hostile length fields, asserting Load always fails cleanly —
// no crash, no unbounded allocation, no false negatives afterwards — and
// that ShardedFilter quarantines corrupt shards instead of dying.

#include <cstdint>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "apps/lsm/run.h"
#include "core/factory.h"
#include "core/filter_io.h"
#include "core/key.h"
#include "core/sharded_filter.h"
#include "fault_injection.h"
#include "range/memento.h"
#include "staticf/ribbon_filter.h"
#include "staticf/xor_filter.h"
#include "util/hash.h"
#include "util/random.h"
#include "util/serialize.h"

namespace bbf {
namespace {

std::vector<std::string_view> DynamicSnapshotTags() {
  std::vector<std::string_view> tags;
  for (std::string_view name : KnownFilterNames()) {
    // Factory names match frame tags except dleft.
    tags.push_back(name == "dleft" ? "dleft-counting" : name);
  }
  tags.push_back("spectral-bloom");
  return tags;
}

std::vector<uint64_t> InsertSome(Filter* f, uint64_t seed, int n) {
  SplitMix64 rng(seed);
  std::vector<uint64_t> inserted;
  for (int i = 0; i < n; ++i) {
    const uint64_t key = rng.Next();
    if (f->Insert(key)) inserted.push_back(key);
  }
  return inserted;
}

std::string SaveToString(const Filter& f) {
  std::ostringstream ss;
  EXPECT_TRUE(f.Save(ss));
  return std::move(ss).str();
}

uint64_t ReadLittleU64(const std::string& blob, size_t offset) {
  uint64_t v = 0;
  for (int i = 0; i < 8; ++i) {
    v |= static_cast<uint64_t>(static_cast<uint8_t>(blob[offset + i]))
         << (8 * i);
  }
  return v;
}

// Byte offset one past the first frame in `blob` (where ShardedFilter's
// per-shard frames begin).
size_t FirstFrameEnd(const std::string& blob) {
  const uint64_t tag_len = ReadLittleU64(blob, 16);
  const size_t payload_len_off = 24 + static_cast<size_t>(tag_len);
  const uint64_t payload_len = ReadLittleU64(blob, payload_len_off);
  return payload_len_off + 16 + static_cast<size_t>(payload_len);
}

TEST(FaultInjection, EveryFamilyRejectsCorruptSnapshotsCleanly) {
  uint64_t tag_index = 0;
  for (std::string_view tag : DynamicSnapshotTags()) {
    SCOPED_TRACE(std::string(tag));
    std::unique_ptr<Filter> f = CreateFilterForTag(tag, 4000);
    ASSERT_NE(f, nullptr);
    const std::vector<uint64_t> keys = InsertSome(f.get(), 77 + tag_index, 1500);
    ASSERT_FALSE(keys.empty());
    const std::string blob = SaveToString(*f);
    ASSERT_FALSE(blob.empty());

    const auto corruptions = fault::AllCorruptions(blob, 0x5EED + tag_index);
    const auto accepted = fault::ReplayExpectingRejection(
        corruptions, [&f](const std::string& b) {
          std::istringstream is(b);
          return f->Load(is);
        });
    EXPECT_TRUE(accepted.empty())
        << accepted.size() << " corruptions accepted, first: "
        << (accepted.empty() ? "" : accepted.front());

    // A rejected load must leave the filter untouched: every key inserted
    // before the fault barrage is still present (no false negatives).
    EXPECT_EQ(f->NumKeys(), keys.size());
    for (uint64_t key : keys) ASSERT_TRUE(f->Contains(key)) << key;
    ++tag_index;
  }
}

TEST(FaultInjection, StaticFamiliesRejectCorruptSnapshots) {
  SplitMix64 rng(0xABC);
  std::vector<uint64_t> keys(1000);
  for (uint64_t& k : keys) k = rng.Next();

  const XorFilter xf(keys, 12);
  const RibbonFilter rf(keys, 12);
  const Filter* filters[] = {&xf, &rf};
  for (const Filter* f : filters) {
    SCOPED_TRACE(std::string(f->Name()));
    const std::string blob = SaveToString(*f);
    const auto accepted = fault::ReplayExpectingRejection(
        fault::AllCorruptions(blob, 0x17), [&](const std::string& b) {
          std::istringstream is(b);
          return LoadFilterSnapshot(is) != nullptr;
        });
    EXPECT_TRUE(accepted.empty())
        << accepted.size() << " corruptions accepted, first: "
        << (accepted.empty() ? "" : accepted.front());
  }
}

// The Memento frame rides two loader paths: Filter::Load on a live
// instance (already in the every-family barrage above via the registry)
// and the LSM's range-filter resurrection, which instantiates from the
// frame tag alone. Both must reject every corruption of a real snapshot —
// bit flips, truncations at each frame boundary, torn writes, hostile
// length fields — and a rejected load must leave a live filter's range
// answers intact.
TEST(FaultInjection, MementoRangeLoaderRejectsCorruptSnapshots) {
  SplitMix64 rng(0xDEF);
  std::vector<uint64_t> keys(2000);
  for (uint64_t& k : keys) k = rng.Next();
  MementoFilter f = MementoFilter::ForCapacity(keys.size(), 0.01);
  for (uint64_t k : keys) ASSERT_TRUE(f.AddKey(k));
  std::ostringstream ss;
  ASSERT_TRUE(f.Save(ss));
  const std::string blob = std::move(ss).str();

  const auto corruptions = fault::AllCorruptions(blob, 0x5EED);
  const auto accepted_direct = fault::ReplayExpectingRejection(
      corruptions, [&f](const std::string& b) {
        std::istringstream is(b);
        return f.Load(is);
      });
  EXPECT_TRUE(accepted_direct.empty())
      << accepted_direct.size() << " corruptions accepted by Load, first: "
      << (accepted_direct.empty() ? "" : accepted_direct.front());

  const auto accepted_lsm = fault::ReplayExpectingRejection(
      corruptions, [](const std::string& b) {
        std::istringstream is(b);
        return lsm::LoadRangeFilterSnapshot(is) != nullptr;
      });
  EXPECT_TRUE(accepted_lsm.empty())
      << accepted_lsm.size()
      << " corruptions accepted by the LSM range loader, first: "
      << (accepted_lsm.empty() ? "" : accepted_lsm.front());

  // The barrage of rejected loads must not have disturbed the original.
  EXPECT_EQ(f.NumKeys(), keys.size());
  for (uint64_t k : keys) ASSERT_TRUE(f.MayContainRange(k, k)) << k;

  // Sanity: the clean blob still loads through the LSM path.
  std::istringstream is(blob);
  auto reloaded = lsm::LoadRangeFilterSnapshot(is);
  ASSERT_NE(reloaded, nullptr);
  for (uint64_t k : keys) ASSERT_TRUE(reloaded->MayContainRange(k, k)) << k;
}

TEST(FaultInjection, GarbageAndEmptyStreamsAreRejected) {
  for (const std::string& junk :
       {std::string(), std::string("hello world"),
        std::string(1000, '\0'), std::string(64, '\xFF')}) {
    std::istringstream is(junk);
    EXPECT_EQ(LoadFilterSnapshot(is), nullptr);
    std::istringstream is2(junk);
    auto bloom = CreateFilterForTag("bloom", 100);
    EXPECT_FALSE(bloom->Load(is2));
  }
}

TEST(FaultInjection, HostileLengthFieldsDontAllocate) {
  // A frame whose payload_len claims 2^62 bytes: the loader must fail
  // from the actual stream contents, not trust the field. Running under
  // ASan, an eager allocation would abort the test.
  std::ostringstream ss;
  WriteU64(ss, kSnapshotMagic);
  WriteU64(ss, kSnapshotVersion);
  WriteU64(ss, 5);
  ss.write("bloom", 5);
  WriteU64(ss, uint64_t{1} << 62);  // Hostile payload length.
  WriteU64(ss, 0);                  // Bogus checksum.
  ss.write("xy", 2);                // Far less payload than claimed.
  const std::string blob = std::move(ss).str();
  std::istringstream is(blob);
  EXPECT_EQ(LoadFilterSnapshot(is), nullptr);
}

TEST(FaultInjection, WrongFamilyTagIsRejected) {
  auto bloom = CreateFilterForTag("bloom", 500);
  InsertSome(bloom.get(), 1, 100);
  const std::string blob = SaveToString(*bloom);
  auto cuckoo = CreateFilterForTag("cuckoo", 500);
  std::istringstream is(blob);
  EXPECT_FALSE(cuckoo->Load(is));
}

class ShardedFaultTest : public ::testing::Test {
 protected:
  static std::unique_ptr<ShardedFilter> MakeSharded() {
    return std::make_unique<ShardedFilter>(
        4000, kShards,
        [](uint64_t cap) { return CreateFilter("bloom", cap, 0.01); });
  }

  static size_t ShardOf(uint64_t key) {
    // Mirrors ShardedFilter's routing: the canonical mix, not a re-hash.
    return static_cast<size_t>(HashedKey(key).value() % kShards);
  }

  static constexpr int kShards = 4;
};

TEST_F(ShardedFaultTest, CorruptShardIsQuarantinedOthersLoad) {
  auto original = MakeSharded();
  const std::vector<uint64_t> keys = InsertSome(original.get(), 9, 2000);
  std::string blob = SaveToString(*original);

  // Flip a bit inside the first per-shard frame (just past the outer
  // directory frame).
  const size_t shard0_start = FirstFrameEnd(blob);
  ASSERT_LT(shard0_start + 40, blob.size());
  blob[shard0_start + 40] ^= 0x10;

  auto reloaded = MakeSharded();
  ShardedFilter::LoadReport report;
  std::istringstream is(blob);
  ASSERT_TRUE(reloaded->LoadWithReport(is, &report));
  EXPECT_EQ(report.total_shards, static_cast<size_t>(kShards));
  EXPECT_EQ(report.healthy_shards, static_cast<size_t>(kShards - 1));
  ASSERT_EQ(report.quarantined.size(), 1u);
  EXPECT_EQ(report.quarantined[0], 0u);

  // Healthy shards answer exactly as before; the quarantined shard was
  // rebuilt empty, so its keys are gone but nothing crashes or lies.
  for (uint64_t key : keys) {
    if (ShardOf(key) != 0) {
      EXPECT_TRUE(reloaded->Contains(key)) << key;
    }
  }
  EXPECT_LT(reloaded->NumKeys(), keys.size());
}

TEST_F(ShardedFaultTest, TruncationMidShardQuarantinesTail) {
  auto original = MakeSharded();
  const std::vector<uint64_t> keys = InsertSome(original.get(), 10, 2000);
  const std::string blob = SaveToString(*original);
  const size_t shards_start = FirstFrameEnd(blob);
  // Cut halfway through the shard frames: a prefix of shards survives,
  // the rest quarantine.
  const std::string cut =
      blob.substr(0, shards_start + (blob.size() - shards_start) / 2);

  auto reloaded = MakeSharded();
  ShardedFilter::LoadReport report;
  std::istringstream is(cut);
  ASSERT_TRUE(reloaded->LoadWithReport(is, &report));
  EXPECT_EQ(report.total_shards, static_cast<size_t>(kShards));
  EXPECT_FALSE(report.quarantined.empty());
  EXPECT_LT(report.healthy_shards, static_cast<size_t>(kShards));
  for (uint64_t key : keys) {
    bool healthy = true;
    for (size_t q : report.quarantined) healthy &= ShardOf(key) != q;
    if (healthy) {
      EXPECT_TRUE(reloaded->Contains(key)) << key;
    }
  }
}

TEST_F(ShardedFaultTest, CorruptDirectoryFailsWholeLoadAndPreservesState) {
  auto original = MakeSharded();
  InsertSome(original.get(), 11, 1000);
  std::string blob = SaveToString(*original);
  blob[30] ^= 0x01;  // Inside the outer directory frame header/payload.

  auto target = MakeSharded();
  const std::vector<uint64_t> target_keys = InsertSome(target.get(), 12, 500);
  ShardedFilter::LoadReport report;
  std::istringstream is(blob);
  EXPECT_FALSE(target->LoadWithReport(is, &report));
  // Failed directory load leaves the target exactly as it was.
  EXPECT_EQ(target->NumKeys(), target_keys.size());
  for (uint64_t key : target_keys) EXPECT_TRUE(target->Contains(key));
}

TEST_F(ShardedFaultTest, RoundTripsThroughFilterIo) {
  auto original = MakeSharded();
  const std::vector<uint64_t> keys = InsertSome(original.get(), 13, 2000);
  const std::string blob = SaveToString(*original);
  std::istringstream is(blob);
  std::unique_ptr<Filter> reloaded = LoadFilterSnapshot(is);
  ASSERT_NE(reloaded, nullptr);
  EXPECT_EQ(reloaded->Name(), "sharded");
  EXPECT_EQ(reloaded->NumKeys(), keys.size());
  for (uint64_t key : keys) EXPECT_TRUE(reloaded->Contains(key));
}

}  // namespace
}  // namespace bbf
