// Tests for the URL yes/no-list substrate (§3.3 / E11): the plain Bloom
// baseline, the FP-free integrated filter, and the adaptive solution.

#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "apps/net/blocklist.h"
#include "workload/generators.h"

namespace bbf::net {
namespace {

struct Workload {
  std::vector<std::string> malicious;
  std::vector<std::string> benign_hot;   // The no list.
  std::vector<std::string> benign_cold;
};

Workload MakeWorkload() {
  Workload w;
  auto urls = GenerateUrls(120000, 50);
  w.malicious.assign(urls.begin(), urls.begin() + 100000);
  w.benign_hot.assign(urls.begin() + 100000, urls.begin() + 110000);
  w.benign_cold.assign(urls.begin() + 110000, urls.end());
  return w;
}

TEST(Blocklist, AllVariantsBlockEveryMaliciousUrl) {
  const Workload w = MakeWorkload();
  const auto bloom = MakeBloomBlocklist(w.malicious, 10.0);
  const auto integrated =
      MakeIntegratedBlocklist(w.malicious, w.benign_hot, 10);
  const auto adaptive = MakeAdaptiveBlocklist(w.malicious, 0.01);
  for (const auto* b : {bloom.get(), integrated.get(), adaptive.get()}) {
    for (size_t i = 0; i < w.malicious.size(); i += 13) {
      ASSERT_TRUE(b->IsBlocked(w.malicious[i]))
          << b->Name() << " failed to block a malicious URL";
    }
  }
}

TEST(Blocklist, IntegratedNoListIsFalsePositiveFree) {
  const Workload w = MakeWorkload();
  const auto integrated =
      MakeIntegratedBlocklist(w.malicious, w.benign_hot, 10);
  for (const auto& url : w.benign_hot) {
    ASSERT_FALSE(integrated->IsBlocked(url))
        << "no-list URL must never be blocked";
  }
}

TEST(Blocklist, IntegratedUnknownUrlsSeeSmallFpr) {
  const Workload w = MakeWorkload();
  const auto integrated =
      MakeIntegratedBlocklist(w.malicious, w.benign_hot, 10);
  uint64_t blocked = 0;
  for (const auto& url : w.benign_cold) blocked += integrated->IsBlocked(url);
  EXPECT_LT(static_cast<double>(blocked) / w.benign_cold.size(), 0.01);
}

TEST(Blocklist, BloomBaselineKeepsBlockingHotBenignUrls) {
  const Workload w = MakeWorkload();
  const auto bloom = MakeBloomBlocklist(w.malicious, 10.0);
  // Find hot benign URLs that collide; they collide on EVERY visit.
  uint64_t first_pass = 0;
  uint64_t second_pass = 0;
  for (const auto& url : w.benign_hot) first_pass += bloom->IsBlocked(url);
  for (const auto& url : w.benign_hot) second_pass += bloom->IsBlocked(url);
  EXPECT_EQ(first_pass, second_pass);  // Deterministic repeat punishment.
  EXPECT_FALSE(bloom->ReportFalseBlock(w.benign_hot[0]));  // Cannot adapt.
}

TEST(Blocklist, AdaptiveStopsBlockingAfterOneReport) {
  const Workload w = MakeWorkload();
  auto adaptive = MakeAdaptiveBlocklist(w.malicious, 0.02);
  uint64_t first_pass = 0;
  for (const auto& url : w.benign_hot) {
    if (adaptive->IsBlocked(url)) {
      ++first_pass;
      adaptive->ReportFalseBlock(url);
    }
  }
  ASSERT_GT(first_pass, 0u);  // 2% FPR over 10k hot URLs: some collide.
  uint64_t second_pass = 0;
  for (const auto& url : w.benign_hot) second_pass += adaptive->IsBlocked(url);
  EXPECT_EQ(second_pass, 0u);
  // Malicious URLs stay blocked after all the adaptation.
  for (size_t i = 0; i < w.malicious.size(); i += 17) {
    ASSERT_TRUE(adaptive->IsBlocked(w.malicious[i]));
  }
}

}  // namespace
}  // namespace bbf::net
