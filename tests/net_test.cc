// Tests for the serving layer: the URL yes/no-list substrate (§3.3 / E11)
// and the filter-as-a-service wire front end (DESIGN.md §14) — protocol
// round trips, backpressure NACKs, slow-loris/idle eviction, graceful
// drain, and the socket-level fault sweep that checks the server against
// an exact acked-key reference model: zero crashes, zero accepted
// corruptions, zero acked-then-lost inserts.

#include <poll.h>
#include <sys/socket.h>
#include <sys/types.h>
#include <unistd.h>

#include <chrono>
#include <cstdint>
#include <cstring>
#include <fstream>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "apps/net/blocklist.h"
#include "apps/net/client.h"
#include "apps/net/server.h"
#include "apps/net/wire.h"
#include "core/sharded_filter.h"
#include "fault_injection.h"
#include "quotient/quotient_filter.h"
#include "test_seed.h"
#include "workload/generators.h"

namespace bbf::net {
namespace {

// --- Blocklist substrate (pre-dates the wire front end) ---------------------

struct Workload {
  std::vector<std::string> malicious;
  std::vector<std::string> benign_hot;   // The no list.
  std::vector<std::string> benign_cold;
};

Workload MakeWorkload() {
  Workload w;
  auto urls = GenerateUrls(120000, 50);
  w.malicious.assign(urls.begin(), urls.begin() + 100000);
  w.benign_hot.assign(urls.begin() + 100000, urls.begin() + 110000);
  w.benign_cold.assign(urls.begin() + 110000, urls.end());
  return w;
}

TEST(Blocklist, AllVariantsBlockEveryMaliciousUrl) {
  const Workload w = MakeWorkload();
  const auto bloom = MakeBloomBlocklist(w.malicious, 10.0);
  const auto integrated =
      MakeIntegratedBlocklist(w.malicious, w.benign_hot, 10);
  const auto adaptive = MakeAdaptiveBlocklist(w.malicious, 0.01);
  for (const auto* b : {bloom.get(), integrated.get(), adaptive.get()}) {
    for (size_t i = 0; i < w.malicious.size(); i += 13) {
      ASSERT_TRUE(b->IsBlocked(w.malicious[i]))
          << b->Name() << " failed to block a malicious URL";
    }
  }
}

TEST(Blocklist, IntegratedNoListIsFalsePositiveFree) {
  const Workload w = MakeWorkload();
  const auto integrated =
      MakeIntegratedBlocklist(w.malicious, w.benign_hot, 10);
  for (const auto& url : w.benign_hot) {
    ASSERT_FALSE(integrated->IsBlocked(url))
        << "no-list URL must never be blocked";
  }
}

TEST(Blocklist, IntegratedUnknownUrlsSeeSmallFpr) {
  const Workload w = MakeWorkload();
  const auto integrated =
      MakeIntegratedBlocklist(w.malicious, w.benign_hot, 10);
  uint64_t blocked = 0;
  for (const auto& url : w.benign_cold) blocked += integrated->IsBlocked(url);
  EXPECT_LT(static_cast<double>(blocked) / w.benign_cold.size(), 0.01);
}

TEST(Blocklist, BloomBaselineKeepsBlockingHotBenignUrls) {
  const Workload w = MakeWorkload();
  const auto bloom = MakeBloomBlocklist(w.malicious, 10.0);
  // Find hot benign URLs that collide; they collide on EVERY visit.
  uint64_t first_pass = 0;
  uint64_t second_pass = 0;
  for (const auto& url : w.benign_hot) first_pass += bloom->IsBlocked(url);
  for (const auto& url : w.benign_hot) second_pass += bloom->IsBlocked(url);
  EXPECT_EQ(first_pass, second_pass);  // Deterministic repeat punishment.
  EXPECT_FALSE(bloom->ReportFalseBlock(w.benign_hot[0]));  // Cannot adapt.
}

TEST(Blocklist, AdaptiveStopsBlockingAfterOneReport) {
  const Workload w = MakeWorkload();
  auto adaptive = MakeAdaptiveBlocklist(w.malicious, 0.02);
  uint64_t first_pass = 0;
  for (const auto& url : w.benign_hot) {
    if (adaptive->IsBlocked(url)) {
      ++first_pass;
      adaptive->ReportFalseBlock(url);
    }
  }
  ASSERT_GT(first_pass, 0u);  // 2% FPR over 10k hot URLs: some collide.
  uint64_t second_pass = 0;
  for (const auto& url : w.benign_hot) second_pass += adaptive->IsBlocked(url);
  EXPECT_EQ(second_pass, 0u);
  // Malicious URLs stay blocked after all the adaptation.
  for (size_t i = 0; i < w.malicious.size(); i += 17) {
    ASSERT_TRUE(adaptive->IsBlocked(w.malicious[i]));
  }
}

// --- Wire front end ---------------------------------------------------------

ShardedFilter::ShardFactory QuotientFactory(double fpr) {
  return [fpr](uint64_t cap) -> std::unique_ptr<Filter> {
    return std::make_unique<QuotientFilter>(
        QuotientFilter::ForCapacity(cap, fpr));
  };
}

std::unique_ptr<ShardedFilter> MakeFilter(uint64_t expected = 1 << 16) {
  return std::make_unique<ShardedFilter>(expected, 4, QuotientFactory(0.01));
}

/// Raw socket helpers for the hostile-peer tests, which bypass SyncClient
/// on purpose (SyncClient refuses to misbehave).
int RawConnect(uint16_t port) {
  const int fd = SyncClient::ConnectTcp(port);
  EXPECT_GE(fd, 0);
  // Bounded reads so a server bug cannot hang the test binary.
  timeval tv{};
  tv.tv_sec = 5;
  setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof(tv));
  return fd;
}

bool RawWrite(int fd, std::string_view bytes) {
  size_t off = 0;
  while (off < bytes.size()) {
    const ssize_t n =
        ::send(fd, bytes.data() + off, bytes.size() - off, MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    off += static_cast<size_t>(n);
  }
  return true;
}

/// Reads until EOF (or the SO_RCVTIMEO deadline) and returns everything.
std::string RawDrain(int fd) {
  std::string all;
  char buf[4096];
  while (true) {
    const ssize_t n = ::recv(fd, buf, sizeof(buf), 0);
    if (n <= 0) break;
    all.append(buf, static_cast<size_t>(n));
  }
  return all;
}

/// True if the peer closes `fd` within `ms` (poll for EOF).
bool ClosedWithin(int fd, int ms) {
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::milliseconds(ms);
  char buf[256];
  while (std::chrono::steady_clock::now() < deadline) {
    pollfd p{fd, POLLIN, 0};
    if (::poll(&p, 1, 50) > 0 && (p.revents & (POLLIN | POLLHUP)) != 0) {
      const ssize_t n = ::recv(fd, buf, sizeof(buf), 0);
      if (n == 0) return true;
      if (n < 0 && errno != EAGAIN && errno != EINTR) return true;
    }
  }
  return false;
}

struct ParsedFrame {
  FrameHeader header;
  std::string payload;
};

/// Cuts every server-encoded response frame out of a raw byte stream.
std::vector<ParsedFrame> ParseFrames(const std::string& stream) {
  std::vector<ParsedFrame> out;
  size_t off = 0;
  while (true) {
    FrameHeader h;
    std::string_view payload;
    size_t consumed = 0;
    const std::string_view rest(stream.data() + off, stream.size() - off);
    if (CutFrame(rest, &h, &payload, &consumed) != CutResult::kFrame) break;
    out.push_back(ParsedFrame{h, std::string(payload)});
    off += consumed;
  }
  return out;
}

/// Blocking read of exactly one frame (header + payload) off `fd`.
bool ReadFrame(int fd, ParsedFrame* out) {
  std::string buf;
  char chunk[4096];
  while (true) {
    FrameHeader h;
    std::string_view payload;
    size_t consumed = 0;
    if (CutFrame(buf, &h, &payload, &consumed) == CutResult::kFrame) {
      out->header = h;
      out->payload = std::string(payload);
      return true;
    }
    const ssize_t n = ::recv(fd, chunk, sizeof(chunk), 0);
    if (n <= 0) return false;
    buf.append(chunk, static_cast<size_t>(n));
  }
}

TEST(WireServer, RoundTripLookupInsertEraseMetrics) {
  auto filter = MakeFilter();
  Server server(filter.get());
  ASSERT_TRUE(server.Listen(0));
  ASSERT_TRUE(server.Start());

  SyncClient client(RawConnect(server.port()));
  ASSERT_TRUE(client.ok());
  EXPECT_EQ(client.Ping(), FrameStatus::kOk);

  const auto keys = GenerateDistinctKeys(2000, TestSeed(900));
  std::vector<uint8_t> res;
  ASSERT_EQ(client.Lookup(keys, &res), FrameStatus::kOk);
  // Fresh filter: at 1% FPR a few ghosts are possible, presence is not.
  size_t present = 0;
  for (uint8_t r : res) present += (r == kKeyPresent);
  EXPECT_LT(present, keys.size() / 20);

  ASSERT_EQ(client.Insert(keys, &res), FrameStatus::kOk);
  for (uint8_t r : res) ASSERT_NE(r, kInsertNacked);

  ASSERT_EQ(client.Lookup(keys, &res), FrameStatus::kOk);
  for (uint8_t r : res) ASSERT_EQ(r, kKeyPresent);

  // Erase half, then re-check through the wire.
  std::vector<uint64_t> half(keys.begin(), keys.begin() + 1000);
  ASSERT_EQ(client.Erase(half, &res), FrameStatus::kOk);

  std::string text;
  ASSERT_EQ(client.Metrics(&text), FrameStatus::kOk);
  EXPECT_NE(text.find("net_frames_served_total"), std::string::npos);
  EXPECT_NE(text.find("net_keys_inserted_total"), std::string::npos);

  server.Shutdown();
  // The wire acked exactly what the filter holds.
  EXPECT_EQ(filter->NumKeys(), keys.size() - half.size());
}

TEST(WireServer, BlocklistOverTheWire) {
  const auto urls = GenerateUrls(2000, 51);
  std::vector<std::string> bad(urls.begin(), urls.begin() + 1000);
  std::vector<std::string> good(urls.begin() + 1000, urls.end());
  auto blocklist = MakeAdaptiveBlocklist(bad, 0.02);

  Server server(nullptr);
  server.set_blocklist(blocklist.get());
  ASSERT_TRUE(server.Listen(0));
  ASSERT_TRUE(server.Start());

  SyncClient client(RawConnect(server.port()));
  std::vector<uint8_t> res;
  ASSERT_EQ(client.BlockCheck(bad, &res), FrameStatus::kOk);
  for (uint8_t r : res) ASSERT_EQ(r, 1);

  // Report every false block over the wire; repeat checks must clear.
  ASSERT_EQ(client.BlockCheck(good, &res), FrameStatus::kOk);
  std::vector<std::string> falsely_blocked;
  for (size_t i = 0; i < good.size(); ++i) {
    if (res[i] != 0) falsely_blocked.push_back(good[i]);
  }
  if (!falsely_blocked.empty()) {
    ASSERT_EQ(client.ReportFalseBlock(falsely_blocked, &res),
              FrameStatus::kOk);
    ASSERT_EQ(client.BlockCheck(falsely_blocked, &res), FrameStatus::kOk);
    for (uint8_t r : res) ASSERT_EQ(r, 0);
  }

  // Key opcodes without a mounted filter are kUnsupported, not a crash.
  std::vector<uint64_t> keys = {1, 2, 3};
  EXPECT_EQ(client.Lookup(keys, &res), FrameStatus::kUnsupported);
  server.Shutdown();
}

TEST(WireServer, HttpScrapeServesPrometheusText) {
  auto filter = MakeFilter();
  Server server(filter.get());
  ASSERT_TRUE(server.Listen(0));
  ASSERT_TRUE(server.Start());

  {
    SyncClient client(RawConnect(server.port()));
    std::vector<uint64_t> keys = {10, 20, 30};
    std::vector<uint8_t> res;
    ASSERT_EQ(client.Insert(keys, &res), FrameStatus::kOk);
  }

  const int fd = RawConnect(server.port());
  ASSERT_TRUE(RawWrite(fd, "GET /metrics HTTP/1.0\r\n\r\n"));
  const std::string resp = RawDrain(fd);  // Server closes after one scrape.
  ::close(fd);
  EXPECT_NE(resp.find("HTTP/1.0 200 OK"), std::string::npos);
  EXPECT_NE(resp.find("bbf_net_keys_inserted_total{filter=\"net\"} 3"),
            std::string::npos);
  EXPECT_EQ(server.metrics().http_scrapes.Load(), 1u);
  server.Shutdown();
}

TEST(WireServer, SaturationNacksPerKeyAndNeverDropsAckedInserts) {
  // A deliberately tiny kReject filter: the server must surface every
  // refused key as an explicit per-key NACK, and every non-NACKed key
  // must be queryable — the acked-never-lost contract under saturation.
  SaturationConfig sat;
  sat.policy = SaturationPolicy::kReject;
  sat.load_threshold = 0.80;
  ShardedFilter filter(400, 4, QuotientFactory(0.01), sat);
  Server server(&filter);
  ASSERT_TRUE(server.Listen(0));
  ASSERT_TRUE(server.Start());

  SyncClient client(RawConnect(server.port()));
  const auto keys = GenerateDistinctKeys(4000, TestSeed(901));
  std::vector<uint64_t> acked;
  size_t nacked = 0;
  for (size_t off = 0; off < keys.size(); off += 512) {
    const size_t n = std::min<size_t>(512, keys.size() - off);
    std::vector<uint64_t> batch(keys.begin() + off, keys.begin() + off + n);
    std::vector<uint8_t> res;
    ASSERT_EQ(client.Insert(batch, &res), FrameStatus::kOk);
    for (size_t i = 0; i < batch.size(); ++i) {
      if (res[i] == kInsertNacked) {
        ++nacked;
      } else {
        acked.push_back(batch[i]);
      }
    }
  }
  ASSERT_GT(nacked, 0u) << "workload must overflow the filter";
  EXPECT_EQ(server.metrics().keys_insert_nacked.Load(), nacked);
  EXPECT_EQ(server.metrics().keys_inserted.Load(), acked.size());

  std::vector<uint8_t> res;
  ASSERT_EQ(client.Lookup(acked, &res), FrameStatus::kOk);
  for (size_t i = 0; i < acked.size(); ++i) {
    ASSERT_EQ(res[i], kKeyPresent) << "acked key lost at index " << i;
  }
  server.Shutdown();
  EXPECT_EQ(filter.NumKeys(), acked.size());
}

TEST(WireServer, OverBudgetRequestsGetBusyNacksNotSilence) {
  auto filter = MakeFilter();
  ServerConfig config;
  config.num_threads = 1;
  config.conn_inflight_budget = 1024;  // ~1 lookup response.
  Server server(filter.get(), config);
  ASSERT_TRUE(server.Start());

  // A socketpair lets the test throttle the server's send buffer, which
  // TCP loopback would happily hide behind megabytes of kernel buffer.
  int sp[2];
  ASSERT_EQ(socketpair(AF_UNIX, SOCK_STREAM, 0, sp), 0);
  int tiny = 4096;
  setsockopt(sp[1], SOL_SOCKET, SO_SNDBUF, &tiny, sizeof(tiny));
  server.AdoptConnection(sp[1]);

  // Flood 64 lookups (2 KiB request, ~2 KiB response each) while reading
  // nothing: the server's send buffer jams, pending bytes cross the
  // budget, and later frames must be NACKed kBusy — then served normally
  // once the client finally reads.
  const auto keys = GenerateDistinctKeys(256, TestSeed(902));
  constexpr int kFrames = 64;
  std::string flood;
  for (int i = 0; i < kFrames; ++i) {
    flood += EncodeFrame(Opcode::kLookup, FrameStatus::kOk,
                         static_cast<uint32_t>(keys.size()),
                         static_cast<uint64_t>(i + 1),
                         EncodeKeysPayload(keys));
  }
  ASSERT_TRUE(RawWrite(sp[0], flood));
  ::shutdown(sp[0], SHUT_WR);
  timeval tv{};
  tv.tv_sec = 5;
  setsockopt(sp[0], SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof(tv));
  const auto frames = ParseFrames(RawDrain(sp[0]));
  ::close(sp[0]);

  // Every frame was answered — kOk with a full body or an explicit kBusy
  // NACK. Nothing was silently dropped, and the connection survived.
  ASSERT_EQ(frames.size(), static_cast<size_t>(kFrames));
  size_t ok = 0;
  size_t busy = 0;
  for (const auto& f : frames) {
    if (f.header.status == static_cast<uint8_t>(FrameStatus::kOk)) {
      ++ok;
      EXPECT_EQ(f.payload.size(), keys.size());
    } else {
      ASSERT_EQ(f.header.status, static_cast<uint8_t>(FrameStatus::kBusy));
      ++busy;
    }
  }
  EXPECT_GT(busy, 0u) << "budget never engaged — backpressure untested";
  EXPECT_GT(ok, 0u);
  EXPECT_EQ(server.metrics().nacked_busy.Load(), busy);
  server.Shutdown();
}

TEST(WireServer, MalformedFramesAreNackedAndConnectionClosed) {
  auto filter = MakeFilter();
  Server server(filter.get());
  ASSERT_TRUE(server.Listen(0));
  ASSERT_TRUE(server.Start());

  const int fd = RawConnect(server.port());
  std::string garbage = EncodeFrame(Opcode::kPing, FrameStatus::kOk, 0, 7, "");
  garbage[0] ^= 0x01;  // Break the magic.
  ASSERT_TRUE(RawWrite(fd, garbage));
  const auto frames = ParseFrames(RawDrain(fd));  // Drain ends at EOF.
  ::close(fd);
  ASSERT_EQ(frames.size(), 1u);
  EXPECT_EQ(frames[0].header.status,
            static_cast<uint8_t>(FrameStatus::kMalformed));
  EXPECT_EQ(server.metrics().malformed_rejected.Load(), 1u);

  // The violation cost one connection, not the server.
  SyncClient client(RawConnect(server.port()));
  EXPECT_EQ(client.Ping(), FrameStatus::kOk);
  server.Shutdown();
}

TEST(WireServer, HostileLengthIsRejectedBeforeBuffering) {
  auto filter = MakeFilter();
  Server server(filter.get());
  ASSERT_TRUE(server.Listen(0));
  ASSERT_TRUE(server.Start());

  // A 40-byte header claiming a 2^62-byte payload. A server that trusts
  // it would try to buffer toward it; ours must reject on the header
  // alone and close — no allocation, no waiting for the phantom payload.
  std::string frame =
      EncodeFrame(Opcode::kInsert, FrameStatus::kOk, 3, 1, "xyz");
  std::string hostile = frame.substr(0, kWireHeaderBytes);
  const uint64_t bomb = uint64_t{1} << 62;
  for (int i = 0; i < 8; ++i) {
    hostile[kWireLenOffset + i] = static_cast<char>((bomb >> (8 * i)) & 0xFF);
  }
  const int fd = RawConnect(server.port());
  ASSERT_TRUE(RawWrite(fd, hostile));
  EXPECT_TRUE(ClosedWithin(fd, 3000));
  ::close(fd);
  EXPECT_GE(server.metrics().malformed_rejected.Load(), 1u);
  server.Shutdown();
}

TEST(WireServer, SlowLorisAndIdleConnectionsAreEvicted) {
  auto filter = MakeFilter();
  ServerConfig config;
  config.io_deadline_ms = 150;
  config.idle_timeout_ms = 300;
  Server server(filter.get(), config);
  ASSERT_TRUE(server.Listen(0));
  ASSERT_TRUE(server.Start());

  // A stalled peer at every protocol state: each header-field boundary,
  // mid-payload, and (offset 0) a fully silent connection. The server
  // owes none of them patience beyond its deadlines.
  const std::string frame =
      EncodeFrame(Opcode::kInsert, FrameStatus::kOk, 2, 1,
                  EncodeKeysPayload(std::vector<uint64_t>{1, 2}));
  std::vector<int> fds;
  for (size_t boundary : kWireFieldBoundaries) {
    const int fd = RawConnect(server.port());
    if (boundary > 0) {
      ASSERT_TRUE(RawWrite(fd, std::string_view(frame).substr(0, boundary)));
    }
    fds.push_back(fd);
  }
  const int mid_payload = RawConnect(server.port());
  ASSERT_TRUE(RawWrite(
      mid_payload, std::string_view(frame).substr(0, kWireHeaderBytes + 5)));
  fds.push_back(mid_payload);

  for (int fd : fds) {
    EXPECT_TRUE(ClosedWithin(fd, 5000)) << "stalled peer never evicted";
    ::close(fd);
  }
  EXPECT_GT(server.metrics().evicted_deadline.Load(), 0u);
  EXPECT_GT(server.metrics().evicted_idle.Load(), 0u);

  // A well-behaved client on the same server is unaffected.
  SyncClient client(RawConnect(server.port()));
  EXPECT_EQ(client.Ping(), FrameStatus::kOk);
  server.Shutdown();
}

TEST(WireServer, PartialWritesReassembleIntoServedFrames) {
  auto filter = MakeFilter();
  Server server(filter.get());
  ASSERT_TRUE(server.Listen(0));
  ASSERT_TRUE(server.Start());

  const auto keys = GenerateDistinctKeys(64, TestSeed(903));
  const std::string frame =
      EncodeFrame(Opcode::kInsert, FrameStatus::kOk,
                  static_cast<uint32_t>(keys.size()), 9,
                  EncodeKeysPayload(keys));
  const int fd = RawConnect(server.port());
  // Dribble the frame 7 bytes at a time — the torn-write shape a fault
  // harness produces and TCP produces naturally under MTU pressure.
  for (size_t off = 0; off < frame.size(); off += 7) {
    ASSERT_TRUE(RawWrite(fd, std::string_view(frame).substr(
                                 off, std::min<size_t>(7, frame.size() - off))));
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  ::shutdown(fd, SHUT_WR);
  const auto frames = ParseFrames(RawDrain(fd));
  ::close(fd);
  ASSERT_EQ(frames.size(), 1u);
  EXPECT_EQ(frames[0].header.status, static_cast<uint8_t>(FrameStatus::kOk));
  EXPECT_EQ(frames[0].payload.size(), keys.size());
  server.Shutdown();
  for (uint64_t k : keys) EXPECT_TRUE(filter->Contains(k));
}

TEST(WireServer, GracefulDrainFinishesInflightAndSnapshots) {
  const std::string snap_path =
      ::testing::TempDir() + "/net_drain_snapshot.bbf";
  std::remove(snap_path.c_str());

  auto filter = MakeFilter();
  ServerConfig config;
  config.drain_snapshot_path = snap_path;
  Server server(filter.get(), config);
  ASSERT_TRUE(server.Start());

  // A socketpair makes the determinism airtight: once write() returns,
  // the bytes ARE in the server end's buffer (no TCP delivery race), so
  // every frame below is "fully received" when the drain begins — the
  // contract says all 10 are served before close.
  int sp[2];
  ASSERT_EQ(socketpair(AF_UNIX, SOCK_STREAM, 0, sp), 0);
  const int fd = sp[0];
  timeval tv{};
  tv.tv_sec = 5;
  setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof(tv));
  server.AdoptConnection(sp[1]);

  // A ping round trip proves the connection is adopted and serving
  // (an un-adopted fd would be closed, not drained, by a racing drain).
  ASSERT_TRUE(
      RawWrite(fd, EncodeFrame(Opcode::kPing, FrameStatus::kOk, 0, 99, "")));
  ParsedFrame pong;
  ASSERT_TRUE(ReadFrame(fd, &pong));
  ASSERT_EQ(pong.header.seq, 99u);

  const auto keys = GenerateDistinctKeys(1000, TestSeed(904));
  std::string burst;
  for (int i = 0; i < 10; ++i) {
    std::vector<uint64_t> batch(keys.begin() + i * 100,
                                keys.begin() + (i + 1) * 100);
    burst += EncodeFrame(Opcode::kInsert, FrameStatus::kOk, 100,
                         static_cast<uint64_t>(i + 1),
                         EncodeKeysPayload(batch));
  }
  ASSERT_TRUE(RawWrite(fd, burst));
  server.RequestDrain();

  const auto frames = ParseFrames(RawDrain(fd));  // Server closes after.
  ::close(fd);
  ASSERT_EQ(frames.size(), 10u);
  std::vector<uint64_t> acked;
  for (const auto& f : frames) {
    ASSERT_EQ(f.header.status, static_cast<uint8_t>(FrameStatus::kOk));
    for (size_t i = 0; i < f.payload.size(); ++i) {
      if (static_cast<uint8_t>(f.payload[i]) != kInsertNacked) {
        acked.push_back(keys[(f.header.seq - 1) * 100 + i]);
      }
    }
  }

  // New connections are refused while draining / after shutdown.
  server.Shutdown();
  EXPECT_FALSE(server.running());

  // Acked implies present — across the drain.
  for (uint64_t k : acked) ASSERT_TRUE(filter->Contains(k));

  // The drain snapshot is a loadable §8 frame holding every acked key.
  std::ifstream is(snap_path, std::ios::binary);
  ASSERT_TRUE(is.good()) << "drain snapshot was not written";
  auto restored = MakeFilter();
  ASSERT_TRUE(restored->Load(is));
  for (uint64_t k : acked) ASSERT_TRUE(restored->Contains(k));
  std::remove(snap_path.c_str());
}

TEST(WireServer, DrainOnSignalIsAsyncSignalSafePath) {
  auto filter = MakeFilter();
  Server server(filter.get());
  ASSERT_TRUE(server.Listen(0));
  ASSERT_TRUE(server.Start());
  server.InstallDrainOnSignal(SIGUSR1);
  ASSERT_FALSE(server.draining());
  ::raise(SIGUSR1);
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(5);
  while (!server.draining() &&
         std::chrono::steady_clock::now() < deadline) {
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  EXPECT_TRUE(server.draining());
  server.Shutdown();
  ::signal(SIGUSR1, SIG_DFL);
}

// --- The socket-level fault sweep -------------------------------------------

/// What the wire codec itself says about a (possibly corrupted) request
/// byte stream — the reference model the server is checked against. The
/// codec is the oracle: its unit tests (wire_fuzz_test) pin its behavior,
/// and the server must agree with it frame for frame.
struct StreamExpectation {
  /// Per cleanly-cut, semantically decodable frame: the insert keys it
  /// carries (empty for non-insert opcodes).
  std::vector<std::vector<uint64_t>> served_frames;
  /// The stream ends in a framing/semantic violation (vs. a clean or
  /// merely incomplete tail).
  bool ends_in_violation = false;
};

StreamExpectation ExpectFromStream(const std::string& stream) {
  StreamExpectation e;
  size_t off = 0;
  while (true) {
    FrameHeader h;
    std::string_view payload;
    size_t consumed = 0;
    const std::string_view rest(stream.data() + off, stream.size() - off);
    const CutResult res = CutFrame(rest, &h, &payload, &consumed);
    if (res == CutResult::kNeedMore) break;
    if (res == CutResult::kMalformed) {
      e.ends_in_violation = true;
      break;
    }
    off += consumed;
    const Opcode op = static_cast<Opcode>(h.opcode);
    std::vector<uint64_t> keys;
    if (op == Opcode::kLookup || op == Opcode::kInsert ||
        op == Opcode::kErase) {
      if (!DecodeKeysPayload(h, payload, &keys)) {
        // Structurally fine, semantically broken: the server closes.
        e.ends_in_violation = true;
        break;
      }
      if (op != Opcode::kInsert) keys.clear();
    }
    // kBlockCheck/kReportFalseBlock: the sweep server mounts no
    // blocklist, so the payload is never decoded — kUnsupported, served.
    e.served_frames.push_back(std::move(keys));
  }
  return e;
}

TEST(WireFaultSweep, CorruptedStreamsNeverCrashCorruptOrLoseAckedKeys) {
  const uint64_t seed = TestSeed(905);
  BBF_ANNOUNCE_SEED(seed);

  auto filter = MakeFilter(1 << 18);
  Server server(filter.get());
  ASSERT_TRUE(server.Listen(0));
  ASSERT_TRUE(server.Start());

  // The pristine stream: two insert frames. Corruptions of it exercise
  // every header field, both payloads, and the inter-frame boundary.
  const auto keys = GenerateDistinctKeys(96, seed);
  const std::vector<uint64_t> batch_a(keys.begin(), keys.begin() + 48);
  const std::vector<uint64_t> batch_b(keys.begin() + 48, keys.end());
  const std::string frame_a =
      EncodeFrame(Opcode::kInsert, FrameStatus::kOk, 48, 1,
                  EncodeKeysPayload(batch_a));
  const std::string stream =
      frame_a + EncodeFrame(Opcode::kInsert, FrameStatus::kOk, 48, 2,
                            EncodeKeysPayload(batch_b));

  fault::FrameSpec spec;
  spec.field_boundaries.assign(std::begin(kWireFieldBoundaries),
                               std::end(kWireFieldBoundaries));
  // The second frame's boundaries too: every fault the first frame can
  // suffer, the stream position after a served frame can suffer.
  for (size_t b : kWireFieldBoundaries) {
    spec.field_boundaries.push_back(frame_a.size() + b);
  }
  spec.length_field_offsets = {kWireCountOffset, kWireLenOffset,
                               frame_a.size() + kWireCountOffset,
                               frame_a.size() + kWireLenOffset};
  spec.checksum_offset = kWireChecksumOffset;
  const auto corpus = fault::FrameCorpus(stream, spec, seed);
  ASSERT_GT(corpus.size(), 150u);

  std::set<uint64_t> acked;  // The reference model's ground truth.
  for (const auto& c : corpus) {
    SCOPED_TRACE("corruption: " + c.name);
    const StreamExpectation expect = ExpectFromStream(c.blob);

    const int fd = RawConnect(server.port());
    ASSERT_TRUE(RawWrite(fd, c.blob));
    ::shutdown(fd, SHUT_WR);
    const auto frames = ParseFrames(RawDrain(fd));
    ::close(fd);

    // Exactly the codec-approved prefix is served — never a frame more
    // (accepted corruption), never one fewer (dropped valid work). A
    // trailing kMalformed NACK is the close-time diagnostic, not service.
    std::vector<ParsedFrame> served;
    for (const auto& f : frames) {
      if (f.header.status != static_cast<uint8_t>(FrameStatus::kMalformed)) {
        served.push_back(f);
      }
    }
    ASSERT_EQ(served.size(), expect.served_frames.size());
    for (size_t i = 0; i < served.size(); ++i) {
      ASSERT_EQ(served[i].header.status,
                static_cast<uint8_t>(FrameStatus::kOk));
      const auto& sent_keys = expect.served_frames[i];
      if (sent_keys.empty()) continue;  // Non-insert opcode.
      ASSERT_EQ(served[i].payload.size(), sent_keys.size());
      for (size_t k = 0; k < sent_keys.size(); ++k) {
        if (static_cast<uint8_t>(served[i].payload[k]) != kInsertNacked) {
          acked.insert(sent_keys[k]);
        }
      }
    }
  }

  // Liveness: the whole corpus cost connections, never the server.
  SyncClient client(RawConnect(server.port()));
  EXPECT_EQ(client.Ping(), FrameStatus::kOk);

  // Zero acked-then-lost inserts across the entire sweep.
  for (uint64_t k : acked) {
    ASSERT_TRUE(filter->Contains(k)) << "acked key lost: " << k;
  }
  server.Shutdown();
}

TEST(WireFaultSweep, MidFrameDisconnectAtEveryBoundaryLeavesServerClean) {
  auto filter = MakeFilter();
  Server server(filter.get());
  ASSERT_TRUE(server.Listen(0));
  ASSERT_TRUE(server.Start());

  const std::string frame =
      EncodeFrame(Opcode::kInsert, FrameStatus::kOk, 4, 1,
                  EncodeKeysPayload(std::vector<uint64_t>{5, 6, 7, 8}));
  for (size_t boundary : kWireFieldBoundaries) {
    SCOPED_TRACE("disconnect after " + std::to_string(boundary) + " bytes");
    const int fd = RawConnect(server.port());
    if (boundary > 0) {
      ASSERT_TRUE(RawWrite(fd, std::string_view(frame).substr(0, boundary)));
    }
    ::close(fd);  // Hard disconnect mid-frame.
  }
  // The torn frames were never complete, so nothing may have committed.
  SyncClient client(RawConnect(server.port()));
  std::vector<uint64_t> keys = {5, 6, 7, 8};
  std::vector<uint8_t> res;
  ASSERT_EQ(client.Lookup(keys, &res), FrameStatus::kOk);
  EXPECT_EQ(server.metrics().frames_served.Load(), 1u);  // Just the lookup.
  server.Shutdown();
}

}  // namespace
}  // namespace bbf::net
