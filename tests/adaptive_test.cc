// Tests for the adaptive quotient filter (§2.3 / E5): adaptivity under
// repeated, skewed, and adversarial negative queries.

#include <cstdint>
#include <vector>

#include <gtest/gtest.h>

#include "adaptive/adaptive_quotient_filter.h"
#include "workload/generators.h"
#include "workload/zipf.h"

namespace bbf {
namespace {

TEST(AdaptiveQuotientFilter, BasicMembership) {
  AdaptiveQuotientFilter f(10, 8);
  EXPECT_TRUE(f.Insert(1));
  EXPECT_TRUE(f.Contains(1));
  EXPECT_TRUE(f.Erase(1));
  EXPECT_FALSE(f.Contains(1));
  EXPECT_FALSE(f.Erase(1));
}

TEST(AdaptiveQuotientFilter, NoFalseNegativesAfterManyAdaptations) {
  AdaptiveQuotientFilter f(13, 6);  // 6-bit remainders: plenty of FPs.
  const auto keys = GenerateDistinctKeys(6000);
  for (uint64_t k : keys) ASSERT_TRUE(f.Insert(k));
  const auto negatives = GenerateNegativeKeys(keys, 50000);
  for (uint64_t k : negatives) {
    if (f.Contains(k)) f.ReportFalsePositive(k);
  }
  EXPECT_GT(f.adaptations(), 100u);
  for (uint64_t k : keys) {
    ASSERT_TRUE(f.Contains(k)) << "adaptation must never evict a member";
  }
}

TEST(AdaptiveQuotientFilter, ReportedFalsePositiveNeverRepeats) {
  AdaptiveQuotientFilter f(12, 6);
  const auto keys = GenerateDistinctKeys(3500);
  for (uint64_t k : keys) ASSERT_TRUE(f.Insert(k));
  const auto negatives = GenerateNegativeKeys(keys, 50000);
  uint64_t first_pass_fps = 0;
  for (uint64_t k : negatives) {
    if (f.Contains(k)) {
      ++first_pass_fps;
      f.ReportFalsePositive(k);
    }
  }
  ASSERT_GT(first_pass_fps, 50u);
  // Second pass over the very same negatives: the adversarial repeat.
  uint64_t second_pass_fps = 0;
  for (uint64_t k : negatives) second_pass_fps += f.Contains(k);
  EXPECT_EQ(second_pass_fps, 0u);
}

TEST(AdaptiveQuotientFilter, SustainedFprUnderZipfianNegatives) {
  // Skewed query streams hammer the same negatives; a plain filter pays
  // the same FPs forever, the adaptive filter amortizes them away.
  AdaptiveQuotientFilter f(12, 7);
  const auto keys = GenerateDistinctKeys(3500);
  for (uint64_t k : keys) ASSERT_TRUE(f.Insert(k));
  const auto hot_negatives = GenerateNegativeKeys(keys, 2000);
  ZipfGenerator zipf(hot_negatives.size(), 1.1, 5);
  uint64_t fps = 0;
  const int kQueries = 200000;
  for (int i = 0; i < kQueries; ++i) {
    const uint64_t k = hot_negatives[zipf.Next()];
    if (f.Contains(k)) {
      ++fps;
      f.ReportFalsePositive(k);
    }
  }
  // At most one FP per distinct hot negative: far below eps * queries.
  EXPECT_LE(fps, hot_negatives.size());
}

TEST(AdaptiveQuotientFilter, InsertAfterAdaptationStaysConsistent) {
  AdaptiveQuotientFilter f(10, 5);
  const auto keys = GenerateDistinctKeys(600);
  for (size_t i = 0; i < 300; ++i) ASSERT_TRUE(f.Insert(keys[i]));
  // Adapt on everything that false-positives.
  const auto negatives = GenerateNegativeKeys(keys, 20000);
  for (uint64_t k : negatives) {
    if (f.Contains(k)) f.ReportFalsePositive(k);
  }
  // Now insert more keys, some of which will share adapted fingerprints.
  for (size_t i = 300; i < keys.size(); ++i) ASSERT_TRUE(f.Insert(keys[i]));
  for (uint64_t k : keys) ASSERT_TRUE(f.Contains(k));
}

TEST(AdaptiveQuotientFilter, SpaceChargesExtensions) {
  AdaptiveQuotientFilter f(12, 6);
  const auto keys = GenerateDistinctKeys(3000);
  for (uint64_t k : keys) ASSERT_TRUE(f.Insert(k));
  const size_t before = f.SpaceBits();
  const auto negatives = GenerateNegativeKeys(keys, 30000);
  for (uint64_t k : negatives) {
    if (f.Contains(k)) f.ReportFalsePositive(k);
  }
  EXPECT_GT(f.SpaceBits(), before);
  // Extensions must stay a small fraction of the base filter.
  EXPECT_LT(f.SpaceBits(), before * 2);
}

}  // namespace
}  // namespace bbf
