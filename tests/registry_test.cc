// Consistency contract of the filter registry (core/registry.h): one
// table is the single source of truth behind CreateFilter (factory),
// CreateFilterForTag (snapshot tag dispatch), and sharded snapshot
// recovery. These tests pin the invariants the old per-call-site if-chains
// could silently drift on: every factory name builds a filter whose
// Name() is its canonical tag, every registered tag loads, snapshot-only
// tags stay out of the factory, and aliases resolve without minting a
// second tag.

#include <algorithm>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "core/factory.h"
#include "core/filter_io.h"
#include "core/registry.h"

namespace bbf {
namespace {

TEST(Registry, FactoryNamesAreSortedRegisteredAndFactoryVisible) {
  const auto names = KnownFilterNames();
  ASSERT_FALSE(names.empty());
  EXPECT_TRUE(std::is_sorted(names.begin(), names.end()));
  EXPECT_EQ(std::adjacent_find(names.begin(), names.end()), names.end())
      << "duplicate factory name";
  for (std::string_view name : names) {
    const FilterEntry* entry = FindFilterEntry(name);
    ASSERT_NE(entry, nullptr) << name;
    EXPECT_TRUE(entry->in_factory) << name;
  }
}

TEST(Registry, EveryFactoryFilterReportsItsCanonicalTag) {
  for (std::string_view name : KnownFilterNames()) {
    const auto f = CreateFilter(name, 1000, 0.01);
    ASSERT_NE(f, nullptr) << name;
    const FilterEntry* entry = FindFilterEntry(name);
    ASSERT_NE(entry, nullptr) << name;
    // Name() must equal the canonical tag — LoadFilterSnapshot routes
    // frames by this exact string, and rejects a mismatched load.
    EXPECT_EQ(f->Name(), entry->tag) << name;
  }
}

TEST(Registry, NoOrphanTags) {
  // Every registered tag (factory-visible or snapshot-only) must build
  // through the tag dispatcher, and the built filter must claim the same
  // tag back — otherwise a snapshot written today could never load.
  for (std::string_view tag : RegisteredFilterTags()) {
    const auto f = CreateFilterForTag(tag, 1000);
    ASSERT_NE(f, nullptr) << tag;
    EXPECT_EQ(f->Name(), tag) << tag;
  }
}

TEST(Registry, EveryTagRoundTripsThroughSnapshotIo) {
  for (std::string_view tag : RegisteredFilterTags()) {
    const auto f = CreateFilterForTag(tag, 1000);
    ASSERT_NE(f, nullptr) << tag;
    // Static families reject inserts (empty build stands in until Load);
    // everyone else takes the keys. Either way the frame must round-trip.
    for (uint64_t k = 1; k <= 64; ++k) f->Insert(k);
    std::ostringstream os;
    ASSERT_TRUE(SaveFilterSnapshot(*f, os)) << tag;
    std::istringstream is(os.str());
    const auto loaded = LoadFilterSnapshot(is);
    ASSERT_NE(loaded, nullptr) << tag;
    EXPECT_EQ(loaded->Name(), tag) << tag;
    EXPECT_EQ(loaded->NumKeys(), f->NumKeys()) << tag;
  }
}

TEST(Registry, SnapshotOnlyTagsAreNotFactoryVisible) {
  // Families whose parameters don't fit (n, fpr) — static filters want
  // the key set up front, spectral wants a bits budget — load from
  // snapshots but are rejected by the factory.
  for (std::string_view tag : {"xor", "ribbon", "spectral-bloom"}) {
    const FilterEntry* entry = FindFilterEntry(tag);
    ASSERT_NE(entry, nullptr) << tag;
    EXPECT_FALSE(entry->in_factory) << tag;
    EXPECT_EQ(CreateFilter(tag, 1000, 0.01), nullptr) << tag;
    EXPECT_NE(CreateFilterForTag(tag, 1000), nullptr) << tag;
  }
  const auto names = KnownFilterNames();
  for (std::string_view tag : {"xor", "ribbon", "spectral-bloom"}) {
    EXPECT_EQ(std::count(names.begin(), names.end(), tag), 0) << tag;
  }
}

TEST(Registry, AliasResolvesToCanonicalEntryWithoutMintingATag) {
  // "dleft" is a factory-visible alias of "dleft-counting": same entry,
  // same built family, and no "dleft" snapshot tag exists.
  const FilterEntry* alias = FindFilterEntry("dleft");
  const FilterEntry* canon = FindFilterEntry("dleft-counting");
  ASSERT_NE(alias, nullptr);
  ASSERT_NE(canon, nullptr);
  EXPECT_EQ(alias, canon);
  const auto f = CreateFilter("dleft", 1000, 0.01);
  ASSERT_NE(f, nullptr);
  EXPECT_EQ(f->Name(), "dleft-counting");
  const auto tags = RegisteredFilterTags();
  EXPECT_EQ(std::count(tags.begin(), tags.end(), "dleft"), 0);
  const auto names = KnownFilterNames();
  EXPECT_EQ(std::count(names.begin(), names.end(), "dleft"), 1);
}

TEST(Registry, UnknownNamesStayUnknownEverywhere) {
  EXPECT_EQ(FindFilterEntry("no-such-filter"), nullptr);
  EXPECT_EQ(CreateFilter("no-such-filter", 100, 0.01), nullptr);
  EXPECT_EQ(CreateFilterForTag("no-such-filter", 100), nullptr);
}

// --- Capability metadata (FilterCaps) ---------------------------------------
// The caps bits are contract: the Tuner's migration decision table picks
// target families by supports_erase/supports_adapt/build_cost, so a row
// that drifts from the family's real behavior silently mis-routes
// migrations. Pin the declared table, then verify each bit behaviorally.

struct CapsRow {
  std::string_view tag;
  bool supports_erase;
  bool supports_adapt;
  BuildCostClass build_cost;
};

TEST(RegistryCaps, DeclaredCapsTableIsPinned) {
  // One row per canonical tag. A new family must add a row here (and the
  // size check below makes forgetting impossible).
  static constexpr CapsRow kRows[] = {
      {"adaptive-cuckoo", true, true, BuildCostClass::kExpensive},
      {"adaptive-quotient", true, true, BuildCostClass::kExpensive},
      {"blocked-bloom", false, false, BuildCostClass::kCheap},
      {"bloom", false, false, BuildCostClass::kCheap},
      {"chained-quotient", true, false, BuildCostClass::kModerate},
      {"counting-bloom", true, false, BuildCostClass::kCheap},
      {"counting-quotient", true, false, BuildCostClass::kModerate},
      {"cuckoo", true, false, BuildCostClass::kModerate},
      {"dleft-counting", true, false, BuildCostClass::kModerate},
      {"expanding-quotient", true, false, BuildCostClass::kModerate},
      {"memento", false, false, BuildCostClass::kModerate},
      {"prefix", false, false, BuildCostClass::kModerate},
      {"quotient", true, false, BuildCostClass::kModerate},
      {"ribbon", false, false, BuildCostClass::kExpensive},
      {"ring", true, false, BuildCostClass::kModerate},
      {"rsqf", false, false, BuildCostClass::kModerate},
      {"scalable-bloom", false, false, BuildCostClass::kCheap},
      {"spectral-bloom", false, false, BuildCostClass::kCheap},
      {"taffy", true, false, BuildCostClass::kModerate},
      {"vector-quotient", true, false, BuildCostClass::kModerate},
      {"xor", false, false, BuildCostClass::kExpensive},
  };
  const auto tags = RegisteredFilterTags();
  ASSERT_EQ(tags.size(), std::size(kRows))
      << "a family was registered without a caps row in this table";
  for (const CapsRow& row : kRows) {
    const FilterEntry* entry = FindFilterEntry(row.tag);
    ASSERT_NE(entry, nullptr) << row.tag;
    EXPECT_EQ(entry->caps.supports_erase, row.supports_erase) << row.tag;
    EXPECT_EQ(entry->caps.supports_adapt, row.supports_adapt) << row.tag;
    EXPECT_EQ(entry->caps.build_cost, row.build_cost) << row.tag;
  }
}

TEST(RegistryCaps, DeclaredEraseMatchesBehaviorForEveryFamily) {
  for (std::string_view tag : RegisteredFilterTags()) {
    const FilterEntry* entry = FindFilterEntry(tag);
    ASSERT_NE(entry, nullptr) << tag;
    const auto f = CreateFilterForTag(tag, 1000);
    ASSERT_NE(f, nullptr) << tag;
    size_t inserted = 0;
    for (uint64_t k = 1; k <= 128; ++k) inserted += f->Insert(k);
    if (inserted == 0) {
      // Static families reject inserts before their build; a family that
      // cannot insert cannot honestly claim erase either.
      EXPECT_FALSE(entry->caps.supports_erase) << tag;
      continue;
    }
    // Erase of a just-inserted key must succeed exactly when the registry
    // says it does — a bit-set family returns false (no-op), an
    // erase-capable family returns true.
    EXPECT_EQ(f->Erase(uint64_t{1}), entry->caps.supports_erase) << tag;
  }
}

TEST(RegistryCaps, DeclaredAdaptMatchesAdaptiveHookForEveryFamily) {
  for (std::string_view tag : RegisteredFilterTags()) {
    const FilterEntry* entry = FindFilterEntry(tag);
    ASSERT_NE(entry, nullptr) << tag;
    const auto f = CreateFilterForTag(tag, 1000);
    ASSERT_NE(f, nullptr) << tag;
    const bool has_hook = dynamic_cast<AdaptiveHook*>(f.get()) != nullptr;
    EXPECT_EQ(has_hook, entry->caps.supports_adapt)
        << tag << ": declared supports_adapt must match AdaptiveHook";
  }
}

TEST(RegistryCaps, AdaptiveFamiliesAreFactoryReachableForMigration) {
  // The Tuner migrates shards by CreateFilter(to_family, ...): every
  // supports_adapt family must therefore be factory-visible, or the
  // repeated-FP policy could choose an unbuildable target.
  size_t adaptive = 0;
  for (std::string_view tag : RegisteredFilterTags()) {
    const FilterEntry* entry = FindFilterEntry(tag);
    if (!entry->caps.supports_adapt) continue;
    ++adaptive;
    EXPECT_TRUE(entry->in_factory) << tag;
    EXPECT_NE(CreateFilter(tag, 1000, 0.01), nullptr) << tag;
  }
  EXPECT_GE(adaptive, 2u);  // adaptive-cuckoo and adaptive-quotient.
}

TEST(Registry, FactoryFiltersSurviveFactoryToSnapshotToLoadToQuery) {
  // End-to-end: build via the factory, fill, snapshot, reload via the tag
  // dispatcher, and verify no key was lost — the exact path sharded
  // snapshot recovery takes per shard.
  for (std::string_view name : KnownFilterNames()) {
    const auto f = CreateFilter(name, 500, 0.01);
    ASSERT_NE(f, nullptr) << name;
    for (uint64_t k = 1; k <= 200; ++k) ASSERT_TRUE(f->Insert(k)) << name;
    std::ostringstream os;
    ASSERT_TRUE(SaveFilterSnapshot(*f, os)) << name;
    std::istringstream is(os.str());
    const auto loaded = LoadFilterSnapshot(is);
    ASSERT_NE(loaded, nullptr) << name;
    for (uint64_t k = 1; k <= 200; ++k) {
      ASSERT_TRUE(loaded->Contains(k)) << name << " lost key " << k;
    }
  }
}

}  // namespace
}  // namespace bbf
