// Tests for the experiment-discovery indexes of §3.2: Sequence Bloom Tree
// (approximate) vs Mantis (exact, CQF-maplet-based inverted index).

#include <algorithm>
#include <cstdint>
#include <set>
#include <vector>

#include <gtest/gtest.h>

#include "apps/bio/sequence_index.h"
#include "util/random.h"

namespace bbf::bio {
namespace {

// Exact reference answer for the experiment-discovery problem.
std::set<uint32_t> ExactHits(
    const std::vector<std::vector<uint64_t>>& experiments,
    const std::vector<uint64_t>& query, double theta) {
  std::set<uint32_t> hits;
  for (uint32_t e = 0; e < experiments.size(); ++e) {
    const std::set<uint64_t> kmers(experiments[e].begin(),
                                   experiments[e].end());
    uint64_t present = 0;
    for (uint64_t km : query) present += kmers.contains(km);
    if (static_cast<double>(present) / query.size() >= theta) hits.insert(e);
  }
  return hits;
}

std::vector<uint64_t> QueryFromExperiment(
    const std::vector<uint64_t>& experiment, size_t n, uint64_t seed) {
  SplitMix64 rng(seed);
  std::vector<uint64_t> query;
  for (size_t i = 0; i < n; ++i) {
    query.push_back(experiment[rng.NextBelow(experiment.size())]);
  }
  return query;
}

class SequenceIndexTest : public ::testing::Test {
 protected:
  void SetUp() override {
    experiments_ = GenerateExperiments(24, 40000, 21, 55);
  }
  std::vector<std::vector<uint64_t>> experiments_;
};

TEST_F(SequenceIndexTest, MantisIsExact) {
  MantisIndex mantis(experiments_);
  for (uint64_t seed = 0; seed < 10; ++seed) {
    const auto query = QueryFromExperiment(
        experiments_[seed % experiments_.size()], 200, seed + 1);
    const auto exact = ExactHits(experiments_, query, 0.8);
    const auto got = mantis.Query(query, 0.8);
    std::set<uint32_t> got_set;
    for (const auto& h : got) got_set.insert(h.experiment);
    EXPECT_EQ(got_set, exact) << "seed " << seed;
  }
}

TEST_F(SequenceIndexTest, MantisPerKmerColorsAreExact) {
  MantisIndex mantis(experiments_);
  SplitMix64 rng(9);
  for (int trial = 0; trial < 200; ++trial) {
    const uint32_t e =
        static_cast<uint32_t>(rng.NextBelow(experiments_.size()));
    const uint64_t km =
        experiments_[e][rng.NextBelow(experiments_[e].size())];
    const auto exps = mantis.ExperimentsOf(km);
    // The source experiment must be reported.
    EXPECT_NE(std::find(exps.begin(), exps.end(), e), exps.end());
    // And every reported experiment must truly contain the k-mer.
    for (uint32_t r : exps) {
      EXPECT_TRUE(std::binary_search(experiments_[r].begin(),
                                     experiments_[r].end(), km));
    }
  }
}

TEST_F(SequenceIndexTest, SbtNeverMissesTrueHits) {
  SequenceBloomTree sbt(experiments_, 10.0);
  for (uint64_t seed = 0; seed < 10; ++seed) {
    const auto query = QueryFromExperiment(
        experiments_[seed % experiments_.size()], 200, seed + 21);
    const auto exact = ExactHits(experiments_, query, 0.8);
    const auto got = sbt.Query(query, 0.8);
    std::set<uint32_t> got_set;
    for (const auto& h : got) got_set.insert(h.experiment);
    for (uint32_t e : exact) {
      EXPECT_TRUE(got_set.contains(e))
          << "SBT missed a true hit (Bloom filters cannot cause misses)";
    }
  }
}

TEST_F(SequenceIndexTest, SbtIsApproximateMantisIsNot) {
  // With skimpy Bloom budgets the SBT over-reports; Mantis never does.
  SequenceBloomTree sbt(experiments_, 3.0);
  MantisIndex mantis(experiments_);
  uint64_t sbt_extra = 0;
  uint64_t mantis_extra = 0;
  for (uint64_t seed = 0; seed < 10; ++seed) {
    const auto query = QueryFromExperiment(
        experiments_[seed % experiments_.size()], 100, seed + 41);
    const auto exact = ExactHits(experiments_, query, 0.7);
    for (const auto& h : sbt.Query(query, 0.7)) {
      sbt_extra += !exact.contains(h.experiment);
    }
    for (const auto& h : mantis.Query(query, 0.7)) {
      mantis_extra += !exact.contains(h.experiment);
    }
  }
  EXPECT_EQ(mantis_extra, 0u);
  EXPECT_GT(sbt_extra, 0u);
}

TEST_F(SequenceIndexTest, ColorClassesAreDeduplicated) {
  MantisIndex mantis(experiments_);
  // Shared-genome experiments co-occur: far fewer classes than k-mers.
  uint64_t total_kmers = 0;
  for (const auto& e : experiments_) total_kmers += e.size();
  EXPECT_LT(mantis.num_color_classes(), total_kmers / 10);
  EXPECT_GE(mantis.num_color_classes(), 1u);
}

TEST(SequenceIndexEdge, EmptyQueryAndSingleExperiment) {
  const auto experiments = GenerateExperiments(1, 5000, 21, 66);
  MantisIndex mantis(experiments);
  SequenceBloomTree sbt(experiments, 10.0);
  EXPECT_TRUE(mantis.Query({}, 0.5).empty());
  EXPECT_TRUE(sbt.Query({}, 0.5).empty());
  const auto query = std::vector<uint64_t>(experiments[0].begin(),
                                           experiments[0].begin() + 50);
  EXPECT_EQ(mantis.Query(query, 1.0).size(), 1u);
  EXPECT_EQ(sbt.Query(query, 1.0).size(), 1u);
}

}  // namespace
}  // namespace bbf::bio
