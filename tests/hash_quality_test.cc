// Statistical quality of the hash-once pipeline (DESIGN.md §10). Every
// structural bit in the library — shard route, quotient, fingerprint,
// probe offset — is a view of one canonical mix, so the mix and its
// Derive streams carry the whole FPR analysis. These tests enforce:
//
//  * avalanche: flipping any single input bit flips each output bit with
//    probability 1/2 (Mix64, HashBytes, and the composed
//    HashedKey::Derive pipeline);
//  * uniformity: chi-squared bucket balance for both sanctioned consumers
//    — the routing slice `value() % shards` and Derive-stream reductions
//    — on sequential keys, the adversarial input for a weak mix;
//  * stream independence: distinct Derive streams are jointly uniform,
//    so Kirsch–Mitzenmacher h1/h2 pairs do not correlate;
//  * invertibility: InverseMix64 is the exact inverse of Mix64 (the
//    learned filter relies on recovering raw keys from canonical values).
//
// All randomized draws go through TestSeed (override: BBF_TEST_SEED=<n>).

#include <array>
#include <bit>
#include <cstdint>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "core/key.h"
#include "test_seed.h"
#include "util/bits.h"
#include "util/hash.h"
#include "util/random.h"

namespace bbf {
namespace {

// Flips each of the 64 input bits over kTrials random keys and checks the
// mean flipped-output-bit count (expect 32, sigma of the mean ~0.063 at
// 4000 trials) and every per-output-bit flip rate (expect 0.5, sigma
// ~0.0079). Tolerances sit past 6 sigma so a seeded rerun never flakes.
template <typename HashFn>
void ExpectAvalanche(HashFn hash, uint64_t seed, const char* what) {
  constexpr int kTrials = 4000;
  SplitMix64 rng(seed);
  for (int bit = 0; bit < 64; ++bit) {
    std::array<uint32_t, 64> flips{};
    int64_t total = 0;
    for (int t = 0; t < kTrials; ++t) {
      const uint64_t x = rng.Next();
      const uint64_t d = hash(x) ^ hash(x ^ (uint64_t{1} << bit));
      total += std::popcount(d);
      for (int out = 0; out < 64; ++out) flips[out] += (d >> out) & 1;
    }
    const double mean = static_cast<double>(total) / kTrials;
    ASSERT_NEAR(mean, 32.0, 0.6) << what << ": input bit " << bit;
    for (int out = 0; out < 64; ++out) {
      const double rate = static_cast<double>(flips[out]) / kTrials;
      ASSERT_NEAR(rate, 0.5, 0.06)
          << what << ": input bit " << bit << " -> output bit " << out;
    }
  }
}

TEST(HashQuality, Mix64Avalanche) {
  const uint64_t seed = TestSeed(0xA1);
  BBF_ANNOUNCE_SEED(seed);
  ExpectAvalanche([](uint64_t x) { return Mix64(x); }, seed, "Mix64");
}

TEST(HashQuality, DerivePipelineAvalanche) {
  // The composed boundary-to-family path: raw key -> canonical mix ->
  // per-family stream. This is what every probe position is made of.
  const uint64_t seed = TestSeed(0xA2);
  BBF_ANNOUNCE_SEED(seed);
  for (uint64_t stream : {uint64_t{0}, uint64_t{1}, uint64_t{0x5A4D}}) {
    ExpectAvalanche(
        [stream](uint64_t x) { return HashedKey(x).Derive(stream); },
        seed + stream, "HashedKey::Derive");
  }
}

TEST(HashQuality, HashBytesAvalanche) {
  // Byte-string boundary hash: flip every bit of a 16-byte key (two
  // internal words, so both the bulk loop and the tail path mix).
  const uint64_t seed = TestSeed(0xA3);
  BBF_ANNOUNCE_SEED(seed);
  constexpr int kTrials = 2000;
  constexpr size_t kLen = 16;
  SplitMix64 rng(seed);
  for (size_t bit = 0; bit < kLen * 8; ++bit) {
    int64_t total = 0;
    for (int t = 0; t < kTrials; ++t) {
      std::array<unsigned char, kLen> buf;
      for (auto& b : buf) b = static_cast<unsigned char>(rng.Next());
      const uint64_t h0 = HashBytes(buf.data(), kLen, HashedKey::kStringSeed);
      buf[bit / 8] ^= static_cast<unsigned char>(1u << (bit % 8));
      const uint64_t h1 = HashBytes(buf.data(), kLen, HashedKey::kStringSeed);
      total += std::popcount(h0 ^ h1);
    }
    // Sigma of the mean is 4/sqrt(2000) ~ 0.09; 0.7 is ~8 sigma.
    ASSERT_NEAR(static_cast<double>(total) / kTrials, 32.0, 0.7)
        << "input bit " << bit;
  }
}

// Chi-squared statistic of `keys` balls in `buckets` bins; for a uniform
// hash it follows chi2(buckets-1): mean = buckets-1, sigma =
// sqrt(2*(buckets-1)).
template <typename BucketFn>
double ChiSquared(BucketFn bucket_of, uint64_t base, uint64_t keys,
                  uint64_t buckets) {
  std::vector<uint32_t> counts(buckets, 0);
  for (uint64_t i = 0; i < keys; ++i) ++counts[bucket_of(base + i)];
  const double expected = static_cast<double>(keys) / buckets;
  double stat = 0;
  for (uint32_t c : counts) {
    const double d = c - expected;
    stat += d * d / expected;
  }
  return stat;
}

TEST(HashQuality, BucketUniformityOnSequentialKeys) {
  const uint64_t seed = TestSeed(0xA4);
  BBF_ANNOUNCE_SEED(seed);
  constexpr uint64_t kKeys = 1 << 17;
  constexpr uint64_t kBuckets = 1024;
  // dof = 1023: mean 1023, sigma ~45.2. Both tails checked — a
  // too-perfect statistic means structured (non-random) assignment.
  const double lo = 1023 - 6 * 45.2;
  const double hi = 1023 + 6 * 45.2;

  // The routing slice ShardedFilter uses (bit-usage contract side A).
  const double route = ChiSquared(
      [](uint64_t k) { return HashedKey(k).value() % kBuckets; }, seed, kKeys,
      kBuckets);
  EXPECT_GT(route, lo) << "routing slice";
  EXPECT_LT(route, hi) << "routing slice";

  // Derive-stream reductions families use (side B), both mod and
  // FastRange flavours.
  const double derive_mod = ChiSquared(
      [](uint64_t k) { return HashedKey(k).Derive(7) % kBuckets; }, seed,
      kKeys, kBuckets);
  EXPECT_GT(derive_mod, lo) << "Derive mod";
  EXPECT_LT(derive_mod, hi) << "Derive mod";

  const double derive_range = ChiSquared(
      [](uint64_t k) { return FastRange64(HashedKey(k).Derive(3), kBuckets); },
      seed, kKeys, kBuckets);
  EXPECT_GT(derive_range, lo) << "Derive FastRange";
  EXPECT_LT(derive_range, hi) << "Derive FastRange";

  // String-key boundary: decimal renderings of sequential integers share
  // long prefixes — a classic weak-hash failure input.
  const double strings = ChiSquared(
      [](uint64_t k) {
        return HashedKey(std::string_view(std::to_string(k))).value() %
               kBuckets;
      },
      seed, kKeys, kBuckets);
  EXPECT_GT(strings, lo) << "string keys";
  EXPECT_LT(strings, hi) << "string keys";
}

TEST(HashQuality, DeriveStreamsAreJointlyUniform) {
  // Pairwise independence of Derive streams: the joint (a mod 32, b mod
  // 32) histogram over random keys must be uniform on its 1024 cells.
  // Correlated streams (the failure Kirsch–Mitzenmacher double hashing
  // cannot tolerate) would concentrate mass on a sub-lattice.
  const uint64_t seed = TestSeed(0xA5);
  BBF_ANNOUNCE_SEED(seed);
  constexpr uint64_t kKeys = 1 << 17;
  const double lo = 1023 - 6 * 45.2;
  const double hi = 1023 + 6 * 45.2;
  const std::pair<uint64_t, uint64_t> pairs[] = {
      {0, 1}, {1, 2}, {0x71, 0x72}, {5, 1000}};
  for (const auto& [a, b] : pairs) {
    SplitMix64 rng(seed);
    std::vector<uint32_t> counts(1024, 0);
    for (uint64_t i = 0; i < kKeys; ++i) {
      const HashedKey k(rng.Next());
      ++counts[(k.Derive(a) % 32) * 32 + (k.Derive(b) % 32)];
    }
    const double expected = static_cast<double>(kKeys) / 1024;
    double stat = 0;
    for (uint32_t c : counts) {
      const double d = c - expected;
      stat += d * d / expected;
    }
    EXPECT_GT(stat, lo) << "streams " << a << "," << b;
    EXPECT_LT(stat, hi) << "streams " << a << "," << b;
  }
}

TEST(HashQuality, RoutingSliceIndependentOfDeriveStreams) {
  // The bit-usage contract's whole point: conditioning on the shard a key
  // routes to must not bias any family stream. Fix route bucket = 0 and
  // check the conditioned Derive distribution is still uniform.
  const uint64_t seed = TestSeed(0xA6);
  BBF_ANNOUNCE_SEED(seed);
  constexpr uint64_t kShards = 16;
  constexpr uint64_t kBuckets = 256;
  std::vector<uint32_t> counts(kBuckets, 0);
  uint64_t kept = 0;
  SplitMix64 rng(seed);
  while (kept < (1u << 16)) {
    const HashedKey k(rng.Next());
    if (k.value() % kShards != 0) continue;
    ++counts[k.Derive(1) % kBuckets];
    ++kept;
  }
  const double expected = static_cast<double>(kept) / kBuckets;
  double stat = 0;
  for (uint32_t c : counts) {
    const double d = c - expected;
    stat += d * d / expected;
  }
  // dof = 255: mean 255, sigma ~22.6.
  EXPECT_LT(stat, 255 + 6 * 22.6);
}

TEST(HashQuality, InverseMix64IsExactInverse) {
  const uint64_t seed = TestSeed(0xA7);
  BBF_ANNOUNCE_SEED(seed);
  SplitMix64 rng(seed);
  for (int i = 0; i < 100000; ++i) {
    const uint64_t x = rng.Next();
    ASSERT_EQ(InverseMix64(Mix64(x)), x);
    ASSERT_EQ(Mix64(InverseMix64(x)), x);
  }
  EXPECT_EQ(InverseMix64(Mix64(0)), 0u);
  EXPECT_EQ(InverseMix64(Mix64(~uint64_t{0})), ~uint64_t{0});
  // HashedKey round-trip as the learned filter uses it: canonical value
  // back to the raw integer key.
  EXPECT_EQ(InverseMix64(HashedKey(uint64_t{123456789}).value()),
            uint64_t{123456789});
}

TEST(HashQuality, IntegerAndStringDomainsAreSeparated) {
  // An integer key and its 8-byte little-endian rendering must not
  // collide by construction: kStringSeed domain-separates the two
  // constructors.
  for (uint64_t k : {uint64_t{0}, uint64_t{1}, uint64_t{0xDEADBEEF}}) {
    std::array<char, 8> bytes;
    for (int i = 0; i < 8; ++i) {
      bytes[i] = static_cast<char>((k >> (8 * i)) & 0xFF);
    }
    EXPECT_NE(HashedKey(k),
              HashedKey(std::string_view(bytes.data(), bytes.size())));
  }
}

}  // namespace
}  // namespace bbf
