// Tests for the quotient-filter family: the 3-metadata-bit quotient filter,
// the counting variant with in-run variable-length counters, the maplet
// variant, and bit-sacrifice expansion. The randomized model tests compare
// every operation against a std::unordered_multiset reference.

#include <cstdint>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include <gtest/gtest.h>

#include "quotient/expanding_quotient_filter.h"
#include "core/key.h"
#include "quotient/quotient_filter.h"
#include "quotient/quotient_maplet.h"
#include "util/hash.h"
#include "util/random.h"
#include "workload/generators.h"

namespace bbf {
namespace {

TEST(QuotientFilter, BasicInsertContains) {
  QuotientFilter f(10, 8);
  EXPECT_FALSE(f.Contains(1));
  EXPECT_TRUE(f.Insert(1));
  EXPECT_TRUE(f.Contains(1));
  EXPECT_EQ(f.NumKeys(), 1u);
  EXPECT_TRUE(f.Erase(1));
  EXPECT_FALSE(f.Contains(1));
  EXPECT_EQ(f.NumKeys(), 0u);
}

TEST(QuotientFilter, NoFalseNegativesNearFullLoad) {
  QuotientFilter f(14, 9);
  const uint64_t n = static_cast<uint64_t>(
      (1u << 14) * QuotientFilter::kMaxLoadFactor) - 16;
  const auto keys = GenerateDistinctKeys(n);
  for (uint64_t k : keys) ASSERT_TRUE(f.Insert(k));
  for (uint64_t k : keys) ASSERT_TRUE(f.Contains(k));
}

TEST(QuotientFilter, RejectsBeyondMaxLoad) {
  QuotientFilter f(6, 8);
  uint64_t inserted = 0;
  for (uint64_t k = 0; k < 1000; ++k) {
    if (f.Insert(Hash64(k, 999))) ++inserted;
  }
  EXPECT_LE(inserted, 61u);  // 64 * 0.94 + 1
  EXPECT_GE(inserted, 58u);
}

TEST(QuotientFilter, FprNearTwoToMinusR) {
  QuotientFilter f(15, 10);
  const uint64_t n = 28000;  // ~85% load.
  const auto keys = GenerateDistinctKeys(n);
  for (uint64_t k : keys) ASSERT_TRUE(f.Insert(k));
  const auto negatives = GenerateNegativeKeys(keys, 200000);
  uint64_t fp = 0;
  for (uint64_t k : negatives) fp += f.Contains(k);
  const double fpr = static_cast<double>(fp) / negatives.size();
  // Expect ~ load * 2^-10 ~ 8.3e-4; allow generous slack.
  EXPECT_LT(fpr, 0.004);
  EXPECT_GT(fpr, 0.0);
}

TEST(QuotientFilter, MultisetDuplicates) {
  QuotientFilter f(10, 8);
  for (int i = 0; i < 5; ++i) EXPECT_TRUE(f.Insert(77));
  EXPECT_EQ(f.Count(77), 5u);
  EXPECT_TRUE(f.Erase(77));
  EXPECT_EQ(f.Count(77), 4u);
  for (int i = 0; i < 4; ++i) EXPECT_TRUE(f.Erase(77));
  EXPECT_FALSE(f.Contains(77));
  EXPECT_FALSE(f.Erase(77));
}

// Randomized differential test against a reference multiset of *hashes*:
// we insert raw fingerprints' source keys and check Contains/Erase/Count
// agree with the reference wherever the filter must be exact (no false
// negatives; counts are upper bounds; erase succeeds iff present... with
// fingerprint-collision slack handled by using distinct keys).
class QuotientFilterModelTest : public ::testing::TestWithParam<int> {};

TEST_P(QuotientFilterModelTest, RandomOpsMatchReference) {
  const int q = 10;
  const int r = GetParam();
  QuotientFilter f(q, r);
  std::unordered_multiset<uint64_t> ref;
  SplitMix64 rng(1234 + r);
  const uint64_t key_space = 3000;  // Dense key reuse to exercise runs.
  for (int op = 0; op < 60000; ++op) {
    const uint64_t key = rng.NextBelow(key_space);
    const double dice = rng.NextDouble();
    if (dice < 0.55) {
      if (f.LoadFactor() < QuotientFilter::kMaxLoadFactor) {
        ASSERT_TRUE(f.Insert(key));
        ref.insert(key);
      }
    } else if (dice < 0.9) {
      // Only erase keys known to be present: erasing an absent key can
      // legitimately delete a colliding twin's fingerprint (the standard
      // fingerprint-filter deletion caveat), which would desynchronize
      // the reference. A dedicated test below covers that caveat.
      if (ref.contains(key)) {
        ASSERT_TRUE(f.Erase(key)) << "op " << op;
        ref.erase(ref.find(key));
      }
    } else {
      if (ref.contains(key)) {
        ASSERT_TRUE(f.Contains(key)) << "false negative, op " << op;
        ASSERT_GE(f.Count(key), ref.count(key)) << "op " << op;
      }
    }
  }
  // Final sweep: every referenced key must be present with count >= truth.
  std::unordered_map<uint64_t, uint64_t> counts;
  for (uint64_t k : ref) ++counts[k];
  for (const auto& [k, c] : counts) {
    ASSERT_TRUE(f.Contains(k));
    ASSERT_GE(f.Count(k), c);
  }
  EXPECT_EQ(f.NumKeys(), ref.size());
}

INSTANTIATE_TEST_SUITE_P(RemainderWidths, QuotientFilterModelTest,
                         ::testing::Values(8, 10, 13, 16));

TEST(QuotientFilter, TableInvariantsHoldUnderChurn) {
  QuotientFilter f(8, 6);
  std::unordered_multiset<uint64_t> ref;
  SplitMix64 rng(9);
  for (int op = 0; op < 20000; ++op) {
    const uint64_t key = rng.NextBelow(400);
    if (rng.NextDouble() < 0.55) {
      if (f.Insert(key)) ref.insert(key);
    } else if (ref.contains(key)) {
      ASSERT_TRUE(f.Erase(key));
      ref.erase(ref.find(key));
    }
    if (op % 500 == 0) {
      ASSERT_TRUE(f.table().CheckInvariants()) << op;
    }
  }
  ASSERT_TRUE(f.table().CheckInvariants());
}

TEST(QuotientFilter, ErasingAbsentKeyMayRemoveCollidingTwin) {
  // The documented deletion caveat of every fingerprint filter: deleting a
  // key that was never inserted can remove a colliding twin's fingerprint.
  // Find two keys with identical fingerprints and demonstrate it.
  QuotientFilter f(6, 4);  // 10-bit fingerprints: collisions are easy.
  uint64_t fq0;
  uint64_t fr0;
  f.Fingerprint(HashedKey(1000), &fq0, &fr0);
  uint64_t twin = 0;
  for (uint64_t k = 0;; ++k) {
    uint64_t fq;
    uint64_t fr;
    f.Fingerprint(HashedKey(k), &fq, &fr);
    if (fq == fq0 && fr == fr0 && k != 1000) {
      twin = k;
      break;
    }
  }
  ASSERT_TRUE(f.Insert(1000));
  EXPECT_TRUE(f.Contains(twin));    // Indistinguishable from 1000.
  EXPECT_TRUE(f.Erase(twin));       // "Deletes" the absent twin...
  EXPECT_FALSE(f.Contains(1000));   // ...creating a false negative for 1000.
}

TEST(QuotientFilter, NeverCompletelyFills) {
  // Even tiny tables must keep one slot free (scans depend on it).
  QuotientFilter f(4, 4);
  uint64_t inserted = 0;
  for (uint64_t k = 0; k < 100; ++k) inserted += f.Insert(k);
  EXPECT_LT(f.table().num_used_slots(), f.table().num_slots());
  EXPECT_TRUE(f.table().CheckInvariants());
}

TEST(QuotientFilter, ForEachFingerprintEnumeratesAll) {
  QuotientFilter f(8, 12);
  const auto keys = GenerateDistinctKeys(200);
  std::unordered_multiset<uint64_t> expected;
  for (uint64_t k : keys) {
    ASSERT_TRUE(f.Insert(k));
    uint64_t fq;
    uint64_t fr;
    f.Fingerprint(HashedKey(k), &fq, &fr);
    expected.insert((fq << 12) | fr);
  }
  std::unordered_multiset<uint64_t> seen;
  f.ForEachFingerprint(
      [&](uint64_t fq, uint64_t fr) { seen.insert((fq << 12) | fr); });
  EXPECT_EQ(seen, expected);
}

TEST(QuotientFilter, ForCapacitySizing) {
  QuotientFilter f = QuotientFilter::ForCapacity(10000, 0.01);
  const auto keys = GenerateDistinctKeys(10000);
  for (uint64_t k : keys) ASSERT_TRUE(f.Insert(k));
  const auto negatives = GenerateNegativeKeys(keys, 100000);
  uint64_t fp = 0;
  for (uint64_t k : negatives) fp += f.Contains(k);
  EXPECT_LT(static_cast<double>(fp) / negatives.size(), 0.02);
}

// --- Counting quotient filter ---------------------------------------------

TEST(CountingQuotientFilter, CountsExactlyWithoutCollisions) {
  CountingQuotientFilter f(12, 16);
  for (int i = 0; i < 1000; ++i) f.Insert(5);
  EXPECT_EQ(f.Count(5), 1000u);
  EXPECT_EQ(f.NumKeys(), 1000u);
  // 1000 copies should take ~1 remainder slot + 2 digit slots (base 2^16),
  // not 1000 slots.
  EXPECT_LE(f.num_used_slots(), 4u);
}

TEST(CountingQuotientFilter, SkewedStreamCountsMatch) {
  CountingQuotientFilter f(13, 12);
  const auto stream = GenerateZipfStream(3000, 1.1, 40000);
  std::unordered_map<uint64_t, uint64_t> truth;
  for (uint64_t k : stream) {
    ASSERT_TRUE(f.Insert(k));
    ++truth[k];
  }
  uint64_t exact = 0;
  for (const auto& [k, c] : truth) {
    ASSERT_GE(f.Count(k), c) << "counting filter may only overcount";
    exact += (f.Count(k) == c);
  }
  EXPECT_GT(static_cast<double>(exact) / truth.size(), 0.95);
}

TEST(CountingQuotientFilter, VariableLengthCountersSaveSlots) {
  // 100k inserts of 100 distinct keys must use far fewer than 100k slots.
  CountingQuotientFilter f(12, 8);
  SplitMix64 rng(5);
  std::vector<uint64_t> keys = GenerateDistinctKeys(100);
  for (int i = 0; i < 100000; ++i) {
    ASSERT_TRUE(f.Insert(keys[rng.NextBelow(100)]));
  }
  EXPECT_LT(f.num_used_slots(), 500u);
}

TEST(CountingQuotientFilter, EraseDecrements) {
  CountingQuotientFilter f(10, 10);
  for (int i = 0; i < 300; ++i) f.Insert(9);
  for (int i = 0; i < 299; ++i) {
    ASSERT_TRUE(f.Erase(9));
    ASSERT_EQ(f.Count(9), static_cast<uint64_t>(299 - i));
  }
  EXPECT_TRUE(f.Erase(9));
  EXPECT_EQ(f.Count(9), 0u);
  EXPECT_FALSE(f.Contains(9));
  EXPECT_FALSE(f.Erase(9));
  EXPECT_EQ(f.num_used_slots(), 0u);
}

TEST(CountingQuotientFilter, RandomizedModel) {
  CountingQuotientFilter f(11, 14);
  std::unordered_map<uint64_t, uint64_t> ref;
  SplitMix64 rng(77);
  const uint64_t key_space = 500;
  for (int op = 0; op < 40000; ++op) {
    const uint64_t key = rng.NextBelow(key_space);
    if (rng.NextDouble() < 0.6) {
      if (f.LoadFactor() < QuotientFilter::kMaxLoadFactor) {
        ASSERT_TRUE(f.Insert(key));
        ++ref[key];
      }
    } else {
      auto it = ref.find(key);
      if (it != ref.end()) {
        ASSERT_TRUE(f.Erase(key)) << "op " << op;
        if (--it->second == 0) ref.erase(it);
      }
    }
  }
  for (const auto& [k, c] : ref) {
    ASSERT_GE(f.Count(k), c);
  }
}

// --- Maplet ----------------------------------------------------------------

TEST(QuotientMaplet, LookupReturnsStoredValue) {
  QuotientMaplet m(10, 12, 8);
  ASSERT_TRUE(m.Insert(100, 42));
  const auto vals = m.Lookup(100);
  ASSERT_EQ(vals.size(), 1u);
  EXPECT_EQ(vals[0], 42u);
  EXPECT_TRUE(m.Lookup(101).empty());
}

TEST(QuotientMaplet, MultipleValuesPerKey) {
  QuotientMaplet m(10, 12, 8);
  ASSERT_TRUE(m.Insert(5, 1));
  ASSERT_TRUE(m.Insert(5, 2));
  ASSERT_TRUE(m.Insert(5, 3));
  auto vals = m.Lookup(5);
  EXPECT_EQ(vals.size(), 3u);
}

TEST(QuotientMaplet, PositiveLookupsAlwaysIncludeTruth) {
  QuotientMaplet m = QuotientMaplet::ForCapacity(8000, 0.01, 10);
  const auto keys = GenerateDistinctKeys(8000);
  SplitMix64 rng(3);
  std::unordered_map<uint64_t, uint64_t> truth;
  for (uint64_t k : keys) {
    const uint64_t v = rng.NextBelow(1024);
    ASSERT_TRUE(m.Insert(k, v));
    truth[k] = v;
  }
  double prs_total = 0;
  for (const auto& [k, v] : truth) {
    const auto vals = m.Lookup(k);
    ASSERT_FALSE(vals.empty());
    EXPECT_NE(std::find(vals.begin(), vals.end(), v), vals.end())
        << "true value missing from lookup result";
    prs_total += vals.size();
  }
  // PRS = 1 + eps (paper §2.4): tiny overhead above exactly 1.
  EXPECT_LT(prs_total / truth.size(), 1.05);
}

TEST(QuotientMaplet, EraseRemovesAssociation) {
  QuotientMaplet m(10, 12, 8);
  m.Insert(5, 1);
  m.Insert(5, 2);
  ASSERT_TRUE(m.Erase(5, 1));
  auto vals = m.Lookup(5);
  ASSERT_EQ(vals.size(), 1u);
  EXPECT_EQ(vals[0], 2u);
  EXPECT_FALSE(m.Erase(5, 9));
}

// --- Expanding (bit sacrifice) ----------------------------------------------

TEST(ExpandingQuotientFilter, MembershipSurvivesExpansions) {
  ExpandingQuotientFilter f(8, 12);
  const auto keys = GenerateDistinctKeys(10000);
  for (uint64_t k : keys) ASSERT_TRUE(f.Insert(k));
  EXPECT_GE(f.expansions(), 5);
  for (uint64_t k : keys) ASSERT_TRUE(f.Contains(k)) << k;
}

TEST(ExpandingQuotientFilter, FprDegradesWithExpansions) {
  // Start with few remainder bits so expansions visibly eat the FPR.
  ExpandingQuotientFilter f(10, 9);
  const auto keys = GenerateDistinctKeys(30000);
  const auto negatives = GenerateNegativeKeys(keys, 30000);
  double prev_fpr = -1;
  size_t idx = 0;
  std::vector<double> fprs;
  for (int stage = 0; stage < 3; ++stage) {
    const size_t target = 900ull << (stage * 2);  // 900, 3600, 14400 keys.
    while (idx < target) ASSERT_TRUE(f.Insert(keys[idx++]));
    uint64_t fp = 0;
    for (uint64_t k : negatives) fp += f.Contains(k);
    fprs.push_back(static_cast<double>(fp) / negatives.size());
  }
  // Four doublings cost four remainder bits: FPR must grow markedly.
  EXPECT_GT(fprs.back(), fprs.front() * 4);
  (void)prev_fpr;
}

TEST(ExpandingQuotientFilter, StopsWhenRemainderExhausted) {
  ExpandingQuotientFilter f(4, 2);
  uint64_t inserted = 0;
  for (uint64_t k = 0; k < 4000; ++k) {
    if (f.Insert(Hash64(k, 31))) ++inserted;
  }
  EXPECT_LT(inserted, 4000u);  // Eventually r == 1 and expansion fails.
  EXPECT_EQ(f.r_bits(), 1);
}

TEST(ExpandingQuotientFilter, EraseStillWorksAfterExpansion) {
  ExpandingQuotientFilter f(6, 10);
  const auto keys = GenerateDistinctKeys(500);
  for (uint64_t k : keys) ASSERT_TRUE(f.Insert(k));
  ASSERT_GT(f.expansions(), 0);
  for (uint64_t k : keys) ASSERT_TRUE(f.Erase(k));
  EXPECT_EQ(f.NumKeys(), 0u);
}

}  // namespace
}  // namespace bbf
