// Tests for the RSQF (2-bit + offsets metadata scheme), the Adaptive
// Range Filter, and the learned filter.

#include <algorithm>
#include <cstdint>
#include <set>
#include <unordered_set>
#include <vector>

#include <gtest/gtest.h>

#include "bloom/bloom_filter.h"
#include "quotient/quotient_filter.h"
#include "quotient/rsqf.h"
#include "range/arf.h"
#include "stacked/learned_filter.h"
#include "util/bits.h"
#include "util/random.h"
#include "workload/generators.h"

namespace bbf {
namespace {

// --- RSQF -------------------------------------------------------------------

TEST(Rsqf, BasicRoundTrip) {
  Rsqf f(8, 8);
  EXPECT_FALSE(f.Contains(1));
  EXPECT_TRUE(f.Insert(1));
  EXPECT_TRUE(f.Contains(1));
  EXPECT_FALSE(f.Erase(1));  // Membership-only variant: no deletes.
  EXPECT_TRUE(f.CheckInvariants());
}

class RsqfWidths : public ::testing::TestWithParam<int> {};

TEST_P(RsqfWidths, NoFalseNegativesNearFullLoad) {
  const int r = GetParam();
  Rsqf f(14, r);
  const uint64_t n =
      static_cast<uint64_t>((1u << 14) * Rsqf::kMaxLoadFactor) - 8;
  const auto keys = GenerateDistinctKeys(n);
  for (uint64_t k : keys) ASSERT_TRUE(f.Insert(k));
  for (uint64_t k : keys) ASSERT_TRUE(f.Contains(k));
  EXPECT_TRUE(f.CheckInvariants());
}

INSTANTIATE_TEST_SUITE_P(RemainderWidths, RsqfWidths,
                         ::testing::Values(4, 8, 13));

TEST(Rsqf, InvariantsHoldThroughoutFill) {
  Rsqf f(8, 6);
  SplitMix64 rng(7);
  std::unordered_multiset<uint64_t> ref;
  for (int op = 0; op < 240; ++op) {
    const uint64_t key = rng.NextBelow(400);
    if (f.LoadFactor() >= Rsqf::kMaxLoadFactor) break;
    ASSERT_TRUE(f.Insert(key));
    ref.insert(key);
    ASSERT_TRUE(f.CheckInvariants()) << "op " << op;
    for (uint64_t k : ref) ASSERT_TRUE(f.Contains(k)) << "op " << op;
  }
}

TEST(Rsqf, MetadataCheaperThanThreeBitQf) {
  // The paper's claim behind "n lg(1/eps) + 2.125n": RSQF metadata is
  // ~2.25 bits/slot here (2 + 16/64) vs the original QF's 3.
  Rsqf rsqf(16, 10);
  QuotientFilter qf(16, 10);
  EXPECT_LT(rsqf.SpaceBits(), qf.SpaceBits());
  const double rsqf_meta =
      static_cast<double>(rsqf.SpaceBits()) / ((1u << 16) + 128) - 10;
  EXPECT_NEAR(rsqf_meta, 2.25, 0.05);
}

TEST(Rsqf, FprMatchesConfiguredTarget) {
  Rsqf f = Rsqf::ForCapacity(100000, 0.001);
  const auto keys = GenerateDistinctKeys(100000);
  for (uint64_t k : keys) ASSERT_TRUE(f.Insert(k));
  const auto negatives = GenerateNegativeKeys(keys, 200000);
  uint64_t fp = 0;
  for (uint64_t k : negatives) fp += f.Contains(k);
  EXPECT_LT(static_cast<double>(fp) / negatives.size(), 0.002);
}

TEST(Rsqf, DuplicateInsertsAreStored) {
  Rsqf f(10, 8);
  for (int i = 0; i < 10; ++i) ASSERT_TRUE(f.Insert(42));
  EXPECT_TRUE(f.Contains(42));
  EXPECT_TRUE(f.CheckInvariants());
}

// --- ARF --------------------------------------------------------------------

class ArfHarness {
 public:
  explicit ArfHarness(std::vector<uint64_t> keys)
      : keys_(std::move(keys)), key_set_(keys_.begin(), keys_.end()) {}

  bool RangeEmpty(uint64_t lo, uint64_t hi) const {
    const auto it = key_set_.lower_bound(lo);
    return it == key_set_.end() || *it > hi;
  }

  // Drives one query through the filter with store feedback (training).
  bool Query(ArfRangeFilter& arf, uint64_t lo, uint64_t hi) {
    const bool may = arf.MayContainRange(lo, hi);
    if (may) arf.Train(lo, hi, RangeEmpty(lo, hi));
    return may;
  }

  const std::vector<uint64_t>& keys() const { return keys_; }

 private:
  std::vector<uint64_t> keys_;
  std::set<uint64_t> key_set_;
};

TEST(Arf, UntrainedPassesEverything) {
  ArfRangeFilter arf;
  EXPECT_TRUE(arf.MayContainRange(0, 10));
  EXPECT_TRUE(arf.MayContainRange(~uint64_t{0} - 5, ~uint64_t{0}));
}

TEST(Arf, NeverFalseNegativeDuringTraining) {
  ArfHarness h(GenerateDistinctKeys(2000, 91));
  ArfRangeFilter arf(1 << 14);
  SplitMix64 rng(92);
  for (int q = 0; q < 20000; ++q) {
    const uint64_t lo = rng.Next();
    const uint64_t hi = lo + rng.NextBelow(1u << 16);
    if (hi < lo) continue;
    const bool may = h.Query(arf, lo, hi);
    if (!h.RangeEmpty(lo, hi)) {
      ASSERT_TRUE(may) << "trained ARF lost a real range";
    }
  }
  // All point queries on real keys still pass.
  for (uint64_t k : h.keys()) ASSERT_TRUE(arf.MayContainRange(k, k));
}

TEST(Arf, RepeatingWorkloadConvergesToZeroFalsePositives) {
  ArfHarness h(GenerateDistinctKeys(2000, 93));
  ArfRangeFilter arf(1 << 16);
  // A fixed set of repeating empty queries — ARF's sweet spot.
  SplitMix64 rng(94);
  std::vector<std::pair<uint64_t, uint64_t>> workload;
  while (workload.size() < 500) {
    const uint64_t lo = rng.Next();
    const uint64_t hi = lo + 1000;
    if (hi >= lo && h.RangeEmpty(lo, hi)) workload.emplace_back(lo, hi);
  }
  uint64_t first_pass = 0;
  for (const auto& [lo, hi] : workload) first_pass += h.Query(arf, lo, hi);
  EXPECT_EQ(first_pass, workload.size());  // Untrained: all FPs.
  uint64_t second_pass = 0;
  for (const auto& [lo, hi] : workload) second_pass += h.Query(arf, lo, hi);
  EXPECT_EQ(second_pass, 0u);  // Fully learned.
}

TEST(Arf, ShiftedWorkloadNeedsRetraining) {
  ArfHarness h(GenerateDistinctKeys(2000, 95));
  ArfRangeFilter arf(1 << 16);
  SplitMix64 rng(96);
  // Train on one region of the query space...
  for (int q = 0; q < 2000; ++q) {
    const uint64_t lo = rng.NextBelow(uint64_t{1} << 62);
    h.Query(arf, lo, lo + 1000);
  }
  // ...then shift the workload to a different region: FPs return.
  uint64_t fps = 0;
  uint64_t total = 0;
  for (int q = 0; q < 2000; ++q) {
    const uint64_t lo = (uint64_t{3} << 62) + rng.NextBelow(uint64_t{1} << 61);
    const uint64_t hi = lo + 1000;
    if (!h.RangeEmpty(lo, hi)) continue;
    ++total;
    fps += arf.MayContainRange(lo, hi);
  }
  EXPECT_GT(static_cast<double>(fps) / total, 0.5)
      << "ARF should not generalize beyond what it was trained on";
}

TEST(Arf, NodeBudgetFreezesRefinement) {
  ArfHarness h(GenerateDistinctKeys(500, 97));
  ArfRangeFilter arf(/*max_nodes=*/64);
  SplitMix64 rng(98);
  for (int q = 0; q < 5000; ++q) {
    const uint64_t lo = rng.Next();
    h.Query(arf, lo, lo + 100);
  }
  EXPECT_LE(arf.num_nodes(), 64u);
  for (uint64_t k : h.keys()) ASSERT_TRUE(arf.MayContainRange(k, k));
}

// --- Learned filter ---------------------------------------------------------

std::vector<uint64_t> ClusteredKeys(uint64_t n, uint64_t seed) {
  // Keys arrive in ~100 dense clusters — the structured distribution a
  // learned model can exploit.
  SplitMix64 rng(seed);
  std::vector<uint64_t> keys;
  while (keys.size() < n) {
    uint64_t base = rng.Next() & ~LowMask(24);
    const uint64_t count = 500 + rng.NextBelow(1000);
    for (uint64_t i = 0; i < count && keys.size() < n; ++i) {
      base += 1 + rng.NextBelow(3);  // Dense: gaps of 1..3.
      keys.push_back(base);
    }
  }
  std::sort(keys.begin(), keys.end());
  keys.erase(std::unique(keys.begin(), keys.end()), keys.end());
  return keys;
}

TEST(LearnedFilter, NoFalseNegativesEver) {
  const auto keys = ClusteredKeys(100000, 1);
  LearnedFilter f(keys, /*max_gap=*/16, /*min_run=*/64, 10.0);
  for (uint64_t k : keys) ASSERT_TRUE(f.Contains(k));
}

TEST(LearnedFilter, BeatsBloomOnClusteredKeys) {
  const auto keys = ClusteredKeys(100000, 2);
  LearnedFilter learned(keys, 16, 64, 10.0);
  BloomFilter bloom(keys.size(), 10.0);
  for (uint64_t k : keys) bloom.Insert(k);
  // Most keys are inside modeled intervals -> tiny backup filter.
  EXPECT_GT(learned.modeled_keys(), keys.size() * 8 / 10);
  EXPECT_LT(learned.SpaceBits() * 3, bloom.SpaceBits());
  // And uniform negatives still see a decent FPR.
  const auto negatives = GenerateNegativeKeys(keys, 50000, 3);
  uint64_t fp = 0;
  for (uint64_t k : negatives) fp += learned.Contains(k);
  EXPECT_LT(static_cast<double>(fp) / negatives.size(), 0.02);
}

TEST(LearnedFilter, DegeneratesOnUniformKeys) {
  const auto keys = GenerateDistinctKeys(50000, 4);
  LearnedFilter f(keys, 16, 64, 10.0);
  EXPECT_EQ(f.num_intervals(), 0u);  // Nothing to learn.
  for (uint64_t k : keys) ASSERT_TRUE(f.Contains(k));  // Backup covers all.
}

TEST(LearnedFilter, InIntervalNegativesAlwaysFalsePositive) {
  // The documented weakness: negatives inside dense intervals cannot be
  // filtered at all.
  const auto keys = ClusteredKeys(50000, 5);
  LearnedFilter f(keys, 16, 64, 10.0);
  ASSERT_GT(f.num_intervals(), 0u);
  // Probe gaps between consecutive clustered keys.
  uint64_t in_interval_fps = 0;
  uint64_t probes = 0;
  for (size_t i = 1; i < keys.size() && probes < 1000; ++i) {
    if (keys[i] - keys[i - 1] == 2) {  // A hole inside a dense run.
      ++probes;
      in_interval_fps += f.Contains(keys[i] - 1);
    }
  }
  ASSERT_GT(probes, 100u);
  EXPECT_EQ(in_interval_fps, probes);
}

}  // namespace
}  // namespace bbf
