// The auto-tuning loop (DESIGN.md §15), layer by layer: the migratable-
// shard seam in ShardedFilter (journal, snapshot-drain-replay, abort
// safety, heterogeneous v3 snapshots), the obs signal pull, the stacked
// serving target, the Tuner's registry-driven decision table on synthetic
// signals, the closed loop end to end on a live adversarial-repeat
// workload, and the network front end's tuner-ctl opcode.

#include <sys/socket.h>

#include <algorithm>
#include <cstdint>
#include <memory>
#include <span>
#include <sstream>
#include <string>
#include <unordered_set>
#include <vector>

#include <gtest/gtest.h>

#include "apps/net/client.h"
#include "apps/net/server.h"
#include "apps/net/wire.h"
#include "core/factory.h"
#include "core/filter_io.h"
#include "core/key.h"
#include "core/registry.h"
#include "core/sharded_filter.h"
#include "obs/export.h"
#include "obs/instrumented.h"
#include "obs/signals.h"
#include "tuning/stacked_serving.h"
#include "tuning/tuner.h"
#include "util/random.h"
#include "workload/generators.h"

#include "test_seed.h"

namespace bbf {
namespace {

ShardedFilter::ShardFactory FamilyFactory(std::string name, double fpr) {
  return [name = std::move(name), fpr](uint64_t cap) {
    return CreateFilter(name, cap, fpr);
  };
}

// --- The migratable-shard seam ----------------------------------------------

TEST(MigrationSeam, EnableMigrationRequiresEmptyFilter) {
  ShardedFilter f(1024, 4, FamilyFactory("quotient", 0.01));
  ASSERT_TRUE(f.Insert(uint64_t{42}));
  EXPECT_FALSE(f.EnableMigration());
  EXPECT_FALSE(f.migration_enabled());

  ShardedFilter g(1024, 4, FamilyFactory("quotient", 0.01));
  EXPECT_TRUE(g.EnableMigration());
  EXPECT_TRUE(g.migration_enabled());
}

TEST(MigrationSeam, MigrateShardSwapsFamilyWithoutLosingAckedKeys) {
  const uint64_t seed = TestSeed(9101);
  BBF_ANNOUNCE_SEED(seed);
  ShardedFilter f(4096, 4, FamilyFactory("quotient", 0.01));
  ASSERT_TRUE(f.EnableMigration());
  std::vector<uint64_t> acked;
  for (uint64_t k : GenerateDistinctKeys(3000, seed)) {
    if (Accepted(f.InsertWithStatus(k))) acked.push_back(k);
  }
  ASSERT_GT(acked.size(), 2500u);

  for (int s = 0; s < f.num_shards(); ++s) {
    const auto report =
        f.MigrateShard(static_cast<size_t>(s), FamilyFactory("cuckoo", 0.01));
    ASSERT_TRUE(report.ok) << report.error;
    EXPECT_EQ(report.to_family, "cuckoo");
    EXPECT_GT(report.snapshot_ops, 0u);
    EXPECT_GT(report.pause_ns, 0u);
  }
  // Zero acked-key loss is the migration contract.
  for (uint64_t k : acked) ASSERT_TRUE(f.Contains(k));
  for (const auto& s : f.Stats()) {
    EXPECT_EQ(s.family, "cuckoo");
    EXPECT_EQ(s.migrations, 1u);
    EXPECT_EQ(s.generations, 1u);
  }
  EXPECT_EQ(f.TotalMigrations(), 4u);
  EXPECT_EQ(f.NumKeys(), acked.size());
}

TEST(MigrationSeam, AbortedMigrationLeavesShardServing) {
  ShardedFilter f(1024, 2, FamilyFactory("quotient", 0.01));
  ASSERT_TRUE(f.EnableMigration());
  for (uint64_t k = 1; k <= 500; ++k) ASSERT_TRUE(f.Insert(k));

  const std::string before = f.Stats()[0].family;
  auto refuse = [](std::span<const FilterJournalOp>,
                   uint64_t) -> std::unique_ptr<Filter> { return nullptr; };
  const auto report = f.MigrateShard(0, refuse, FamilyFactory("cuckoo", 0.01));
  EXPECT_FALSE(report.ok);
  EXPECT_FALSE(report.error.empty());

  for (uint64_t k = 1; k <= 500; ++k) EXPECT_TRUE(f.Contains(k));
  EXPECT_EQ(f.Stats()[0].family, before);
  EXPECT_EQ(f.TotalMigrations(), 0u);
  // The abort did not wedge the shard: a later migration succeeds.
  EXPECT_TRUE(f.MigrateShard(0, FamilyFactory("cuckoo", 0.01)).ok);
}

TEST(MigrationSeam, JournalReplaysErasesIntoSuccessor) {
  ShardedFilter f(2048, 1, FamilyFactory("counting-quotient", 0.01));
  ASSERT_TRUE(f.EnableMigration());
  for (uint64_t k = 1; k <= 400; ++k) ASSERT_TRUE(f.Insert(k));
  for (uint64_t k = 1; k <= 400; k += 2) ASSERT_TRUE(f.Erase(k));

  const auto report = f.MigrateShard(0, FamilyFactory("counting-bloom", 0.01));
  ASSERT_TRUE(report.ok) << report.error;
  EXPECT_EQ(f.NumKeys(), 200u);
  for (uint64_t k = 2; k <= 400; k += 2) EXPECT_TRUE(f.Contains(k));
}

TEST(MigrationSeam, ShardIndexOutOfRangeFails) {
  ShardedFilter f(1024, 2, FamilyFactory("quotient", 0.01));
  ASSERT_TRUE(f.EnableMigration());
  const auto report = f.MigrateShard(99, FamilyFactory("cuckoo", 0.01));
  EXPECT_FALSE(report.ok);
  EXPECT_NE(report.error.find("out of range"), std::string::npos);
}

TEST(MigrationSeam, BrokenJournalRefusesMigrationButKeepsServing) {
  ShardedFilter f(4096, 1, FamilyFactory("quotient", 0.01));
  ShardedFilter::MigrationConfig cfg;
  cfg.journal_cap = 64;
  ASSERT_TRUE(f.EnableMigration(cfg));
  for (uint64_t k = 1; k <= 300; ++k) ASSERT_TRUE(f.Insert(k));
  // Serving is unaffected past the cap; only migration is refused.
  for (uint64_t k = 1; k <= 300; ++k) EXPECT_TRUE(f.Contains(k));
  const auto report = f.MigrateShard(0, FamilyFactory("cuckoo", 0.01));
  EXPECT_FALSE(report.ok);
  EXPECT_NE(report.error.find("journal"), std::string::npos);
}

TEST(MigrationSeam, HeterogeneousSnapshotRoundTripsWithTagBuilder) {
  const uint64_t seed = TestSeed(9102);
  BBF_ANNOUNCE_SEED(seed);
  ShardedFilter f(4096, 4, FamilyFactory("quotient", 0.01));
  ASSERT_TRUE(f.EnableMigration());
  std::vector<uint64_t> acked;
  for (uint64_t k : GenerateDistinctKeys(2000, seed)) {
    if (Accepted(f.InsertWithStatus(k))) acked.push_back(k);
  }
  ASSERT_TRUE(f.MigrateShard(0, FamilyFactory("cuckoo", 0.01)).ok);
  ASSERT_TRUE(f.MigrateShard(2, FamilyFactory("blocked-bloom", 0.01)).ok);
  std::ostringstream os;
  ASSERT_TRUE(f.Save(os));

  // With a registry-backed tag builder every migrated shard reloads in
  // its post-migration family.
  ShardedFilter loaded(4096, 4, FamilyFactory("quotient", 0.01));
  loaded.SetSnapshotTagBuilder([](std::string_view tag, uint64_t cap) {
    return CreateFilterForTag(tag, cap);
  });
  std::istringstream is(os.str());
  ShardedFilter::LoadReport report;
  ASSERT_TRUE(loaded.LoadWithReport(is, &report));
  EXPECT_TRUE(report.AllHealthy());
  const auto stats = loaded.Stats();
  EXPECT_EQ(stats[0].family, "cuckoo");
  EXPECT_EQ(stats[1].family, "quotient");
  EXPECT_EQ(stats[2].family, "blocked-bloom");
  EXPECT_EQ(stats[3].family, "quotient");
  for (uint64_t k : acked) ASSERT_TRUE(loaded.Contains(k));
  EXPECT_EQ(loaded.NumKeys(), f.NumKeys());
}

TEST(MigrationSeam, ForeignShardsQuarantineWithoutTagBuilder) {
  ShardedFilter f(4096, 4, FamilyFactory("quotient", 0.01));
  ASSERT_TRUE(f.EnableMigration());
  for (uint64_t k = 1; k <= 1000; ++k) f.Insert(k);
  ASSERT_TRUE(f.MigrateShard(1, FamilyFactory("cuckoo", 0.01)).ok);
  std::ostringstream os;
  ASSERT_TRUE(f.Save(os));

  ShardedFilter loaded(4096, 4, FamilyFactory("quotient", 0.01));
  std::istringstream is(os.str());
  ShardedFilter::LoadReport report;
  ASSERT_TRUE(loaded.LoadWithReport(is, &report));
  EXPECT_EQ(report.quarantined, (std::vector<size_t>{1}));
  EXPECT_EQ(report.healthy_shards, 3u);
  // Quarantined shard came back empty in the factory family.
  EXPECT_EQ(loaded.Stats()[1].family, "quotient");
  EXPECT_EQ(loaded.Stats()[1].num_keys, 0u);
}

// --- Observability pull API -------------------------------------------------

TEST(Signals, PullReadsTheShardedSurface) {
  auto inner =
      std::make_unique<ShardedFilter>(4096, 4, FamilyFactory("quotient", 0.01));
  ShardedFilter* sharded = inner.get();
  ASSERT_TRUE(sharded->EnableMigration());
  obs::InstrumentedFilter filter(std::move(inner), 0.01);
  for (uint64_t k = 1; k <= 800; ++k) filter.Insert(k);
  for (uint64_t k = 100000; k <= 101000; ++k) filter.Contains(k);

  const obs::TunerSignals s = obs::PullTunerSignals(filter);
  EXPECT_TRUE(s.sharded);
  ASSERT_EQ(s.shards.size(), 4u);
  EXPECT_DOUBLE_EQ(s.configured_epsilon, 0.01);
  EXPECT_EQ(s.num_keys, filter.NumKeys());
  uint64_t shard_total = 0;
  for (const auto& sh : s.shards) {
    shard_total += sh.num_keys;
    EXPECT_EQ(sh.family, "quotient");
    EXPECT_GE(sh.observed_fpr, 0.0) << "track_shard_fpr column missing";
  }
  EXPECT_EQ(shard_total, s.num_keys);
  EXPECT_LT(s.hottest_shard, 4u);
}

TEST(Signals, NonShardedFilterYieldsScalarSignalsAndIdleTuner) {
  obs::InstrumentedFilter filter(CreateFilter("bloom", 1000, 0.01), 0.01);
  const obs::TunerSignals s = obs::PullTunerSignals(filter);
  EXPECT_FALSE(s.sharded);
  EXPECT_TRUE(s.shards.empty());

  tuning::Tuner tuner(filter);
  EXPECT_FALSE(tuner.valid());
  const auto r = tuner.Poll();
  EXPECT_EQ(r.decision.action, tuning::TunerAction::kNone);
  EXPECT_FALSE(r.acted);
}

// --- Stacked serving target -------------------------------------------------

TEST(StackedServing, NetPositivesCancelsErasesAndInvertsTheMix) {
  std::vector<FilterJournalOp> ops;
  const uint64_t a = 101, b = 202, c = 303;
  for (uint64_t k : {a, b, c}) ops.push_back({HashedKey(k).value(), 0});
  ops.push_back({HashedKey(b).value(), 1});
  auto pos = tuning::StackedServingFilter::NetPositives(ops);
  std::sort(pos.begin(), pos.end());
  EXPECT_EQ(pos, (std::vector<uint64_t>{a, c}));
}

TEST(StackedServing, ServesPositivesSuppressesHotNegativesAcceptsInserts) {
  std::vector<uint64_t> positives, negatives;
  for (uint64_t k = 1; k <= 512; ++k) positives.push_back(k);
  for (uint64_t k = 10001; k <= 10256; ++k) negatives.push_back(k);
  tuning::StackedServingFilter f(positives, negatives, 1024, {});
  EXPECT_EQ(f.Name(), "stacked-serving");
  EXPECT_GE(f.front_layers(), 2u);

  for (uint64_t k : positives) ASSERT_TRUE(f.Contains(k));
  // Trained hot negatives pass only by colliding through two layers
  // (~eps^2); a plain bloom at the same budget would leak ~1% of them.
  size_t hot_fp = 0;
  for (uint64_t k : negatives) hot_fp += f.Contains(k);
  EXPECT_LE(hot_fp, 5u);

  // Post-build inserts land in the overflow and serve immediately.
  for (uint64_t k = 20001; k <= 20100; ++k) ASSERT_TRUE(f.Insert(k));
  for (uint64_t k = 20001; k <= 20100; ++k) EXPECT_TRUE(f.Contains(k));
  EXPECT_EQ(f.NumKeys(), positives.size() + 100);
  EXPECT_GT(f.SpaceBits(), 0u);
}

TEST(StackedServing, SnapshotRoundTripsThroughEmptyShell) {
  std::vector<uint64_t> positives, negatives;
  for (uint64_t k = 1; k <= 300; ++k) positives.push_back(k);
  for (uint64_t k = 50001; k <= 50100; ++k) negatives.push_back(k);
  tuning::StackedServingFilter f(positives, negatives, 600, {});
  for (uint64_t k = 70001; k <= 70050; ++k) ASSERT_TRUE(f.Insert(k));

  std::ostringstream os;
  ASSERT_TRUE(f.Save(os));
  tuning::StackedServingFilter loaded(1);
  std::istringstream is(os.str());
  ASSERT_TRUE(loaded.Load(is));

  EXPECT_EQ(loaded.front_layers(), f.front_layers());
  EXPECT_EQ(loaded.front_keys(), f.front_keys());
  EXPECT_EQ(loaded.NumKeys(), f.NumKeys());
  for (uint64_t k : positives) EXPECT_TRUE(loaded.Contains(k));
  for (uint64_t k = 70001; k <= 70050; ++k) EXPECT_TRUE(loaded.Contains(k));
  // The rebuild is exact: hot-negative answers match bit for bit.
  for (uint64_t k : negatives) {
    EXPECT_EQ(loaded.Contains(k), f.Contains(k)) << k;
  }

  // A corrupt frame is rejected without disturbing the target.
  std::string bytes = os.str();
  bytes[bytes.size() / 2] ^= 0x40;
  std::istringstream bad(bytes);
  tuning::StackedServingFilter untouched(1);
  EXPECT_FALSE(untouched.Load(bad));
  EXPECT_EQ(untouched.NumKeys(), 0u);
}

// --- The decision table on synthetic signals --------------------------------

obs::TunerSignals ShardedSignals(size_t num_shards) {
  obs::TunerSignals s;
  s.sharded = true;
  s.shards.resize(num_shards);
  for (auto& sh : s.shards) {
    sh.family = "blocked-bloom";
    sh.num_keys = 1000;
    sh.load_factor = 0.5;
    sh.observed_fpr = 0.0;
  }
  return s;
}

class TunerTableTest : public ::testing::Test {
 protected:
  TunerTableTest()
      : filter_(CreateFilter("bloom", 100, 0.01), 0.01), tuner_(filter_) {}
  tuning::TunerDecision Eval(const obs::TunerSignals& s) {
    return tuner_.Evaluate(s);
  }
  obs::InstrumentedFilter filter_;
  tuning::Tuner tuner_;
};

TEST_F(TunerTableTest, QuietSignalsDecideNothing) {
  const auto d = Eval(ShardedSignals(4));
  EXPECT_EQ(d.action, tuning::TunerAction::kNone);
  EXPECT_EQ(d.trigger, tuning::TunerTrigger::kNone);
}

TEST_F(TunerTableTest, RepeatedFpMigratesToAdaptiveFamily) {
  auto s = ShardedSignals(4);
  s.shards[2].fpr_repeated_keys = 3;
  const auto d = Eval(s);
  EXPECT_EQ(d.action, tuning::TunerAction::kMigrateAdaptive);
  EXPECT_EQ(d.trigger, tuning::TunerTrigger::kRepeatedFp);
  EXPECT_EQ(d.shard, 2u);
  EXPECT_EQ(d.from_family, "blocked-bloom");
  EXPECT_EQ(d.to_family, "adaptive-cuckoo");
  EXPECT_NE(d.reason.find("repeat-hot"), std::string::npos);
}

TEST_F(TunerTableTest, RepeatedFpOnAdaptiveFamilyDoesNotRetrigger) {
  auto s = ShardedSignals(4);
  s.shards[2].family = "adaptive-cuckoo";
  s.shards[2].fpr_repeated_keys = 3;
  const auto d = Eval(s);
  EXPECT_EQ(d.action, tuning::TunerAction::kNone);
}

TEST_F(TunerTableTest, WholeFilterSketchFallsBackToWorstFprShard) {
  auto s = ShardedSignals(4);
  s.fpr.fp_repeated_keys = 5;
  s.worst_fpr_shard = 1;
  const auto d = Eval(s);
  EXPECT_EQ(d.action, tuning::TunerAction::kMigrateAdaptive);
  EXPECT_EQ(d.shard, 1u);
}

TEST_F(TunerTableTest, FprBreachNeedsCiNotJustThePointEstimate) {
  auto s = ShardedSignals(4);
  s.shards[0].observed_fpr = 0.08;  // Noisy point estimate...
  s.shards[0].fpr_ci_low = 0.004;   // ...not provably above budget.
  s.shards[0].fpr_negative_lookups = 2000;
  EXPECT_EQ(Eval(s).action, tuning::TunerAction::kNone);

  s.shards[0].fpr_ci_low = 0.03;  // Now provable.
  const auto d = Eval(s);
  EXPECT_EQ(d.action, tuning::TunerAction::kMigrateTighterFpr);
  EXPECT_EQ(d.trigger, tuning::TunerTrigger::kFprBreach);
  EXPECT_EQ(d.shard, 0u);
  EXPECT_EQ(d.to_family, "blocked-bloom");
  EXPECT_DOUBLE_EQ(d.target_fpr, 0.01 * 0.25);
}

TEST_F(TunerTableTest, FprBreachNeedsEnoughNegativeSamples) {
  auto s = ShardedSignals(4);
  s.shards[0].observed_fpr = 0.08;
  s.shards[0].fpr_ci_low = 0.05;
  s.shards[0].fpr_negative_lookups = 100;  // Below min_negative_samples.
  EXPECT_EQ(Eval(s).action, tuning::TunerAction::kNone);
}

TEST_F(TunerTableTest, LoadKneeRebalancesWithCapacityBoost) {
  auto s = ShardedSignals(4);
  s.shards[3].load_factor = 0.97;
  const auto d = Eval(s);
  EXPECT_EQ(d.action, tuning::TunerAction::kRebalanceShard);
  EXPECT_EQ(d.trigger, tuning::TunerTrigger::kLoadKnee);
  EXPECT_EQ(d.shard, 3u);
  EXPECT_EQ(d.capacity_boost, 2u);
}

TEST_F(TunerTableTest, SkewRebalancesTheHottestShard) {
  // The mean includes the hot shard, so with ratio 4 the trigger needs
  // n > 4 shards: here 20000 > 4 * (20000 + 7000) / 8 = 13500.
  auto s = ShardedSignals(8);
  s.shards[1].num_keys = 20000;
  s.hottest_shard = 1;
  const auto d = Eval(s);
  EXPECT_EQ(d.action, tuning::TunerAction::kRebalanceShard);
  EXPECT_EQ(d.trigger, tuning::TunerTrigger::kShardSkew);
  EXPECT_EQ(d.shard, 1u);
}

TEST_F(TunerTableTest, RepeatedFpOutranksBreachOutranksKnee) {
  auto s = ShardedSignals(4);
  s.shards[0].fpr_repeated_keys = 3;
  s.shards[1].observed_fpr = 0.08;
  s.shards[1].fpr_ci_low = 0.05;
  s.shards[1].fpr_negative_lookups = 2000;
  s.shards[2].load_factor = 0.99;
  EXPECT_EQ(Eval(s).trigger, tuning::TunerTrigger::kRepeatedFp);

  s.shards[0].fpr_repeated_keys = 0;
  EXPECT_EQ(Eval(s).trigger, tuning::TunerTrigger::kFprBreach);

  s.shards[1].fpr_ci_low = 0.0;
  s.shards[1].observed_fpr = 0.0;
  EXPECT_EQ(Eval(s).trigger, tuning::TunerTrigger::kLoadKnee);
}

// --- The closed loop, end to end --------------------------------------------

// Builds a 1-shard blocked-bloom filter at a deliberately loose epsilon,
// inserts `inserted`, and returns in-domain (estimator-scored) negative
// keys that the filter false-positives on.
std::vector<uint64_t> FindInDomainFalsePositives(
    const obs::InstrumentedFilter& filter, const std::vector<uint64_t>& inserted,
    size_t want, uint64_t seed) {
  std::unordered_set<uint64_t> present(inserted.begin(), inserted.end());
  SplitMix64 rng(seed);
  std::vector<uint64_t> fps;
  for (int attempts = 0; fps.size() < want && attempts < 4'000'000;
       ++attempts) {
    const uint64_t k = rng.Next();
    if (present.contains(k)) continue;
    if (!ObservedFprEstimator::InDomain(HashedKey(k))) continue;
    if (filter.Contains(k)) fps.push_back(k);
  }
  return fps;
}

TEST(TunerLoop, AdversarialRepeatsMigrateToAdaptiveAndRecover) {
  const uint64_t seed = TestSeed(9103);
  BBF_ANNOUNCE_SEED(seed);
  auto inner =
      std::make_unique<ShardedFilter>(512, 1, FamilyFactory("blocked-bloom", 0.25));
  ShardedFilter* sharded = inner.get();
  ASSERT_TRUE(sharded->EnableMigration());
  obs::InstrumentedFilter filter(std::move(inner), 0.25);

  tuning::TunerConfig cfg;
  cfg.fpr_budget = 0.01;
  tuning::Tuner tuner(filter, cfg);
  ASSERT_TRUE(tuner.valid());

  const std::vector<uint64_t> keys = GenerateDistinctKeys(400, seed);
  for (uint64_t k : keys) ASSERT_TRUE(filter.Insert(k));

  // An adversary replays a handful of discovered false positives; the
  // per-shard sketch marks them repeat-hot.
  const auto hot = FindInDomainFalsePositives(filter, keys, 3, seed + 1);
  ASSERT_EQ(hot.size(), 3u) << "loose blocked-bloom must yield FPs";
  for (int round = 0; round < 12; ++round) {
    for (uint64_t k : hot) EXPECT_TRUE(filter.Contains(k));
  }
  ASSERT_GE(sharded->Stats()[0].fpr_repeated_keys, 2u);

  const auto r = tuner.Poll();
  EXPECT_EQ(r.decision.action, tuning::TunerAction::kMigrateAdaptive);
  EXPECT_EQ(r.decision.trigger, tuning::TunerTrigger::kRepeatedFp);
  EXPECT_EQ(r.decision.to_family, "adaptive-cuckoo");
  ASSERT_TRUE(r.acted);
  ASSERT_TRUE(r.report.ok) << r.report.error;

  // The shard swapped families online, kept every acked key, and the
  // observation window restarted clean.
  const auto stats = sharded->Stats();
  EXPECT_EQ(stats[0].family, "adaptive-cuckoo");
  EXPECT_EQ(stats[0].migrations, 1u);
  EXPECT_EQ(stats[0].fpr_repeated_keys, 0u);
  for (uint64_t k : keys) ASSERT_TRUE(filter.Contains(k));

  // The decision is visible through every surface: history, status text,
  // counters, and both exporters.
  ASSERT_EQ(tuner.History().size(), 1u);
  const std::string status = tuner.StatusText();
  EXPECT_NE(status.find("migrate-adaptive"), std::string::npos);
  EXPECT_NE(status.find("adaptive-cuckoo"), std::string::npos);

  obs::MetricsRegistry registry;
  tuner.RegisterMetrics(registry, "tuner");
  const auto entries = registry.Snapshot();
  const std::string prom = obs::RenderPrometheus(entries);
  EXPECT_NE(prom.find("bbf_tuner_migrations_total{filter=\"tuner\"} 1"),
            std::string::npos)
      << prom;
  EXPECT_NE(
      prom.find("bbf_tuner_trigger_repeated_fp_total{filter=\"tuner\"} 1"),
      std::string::npos);
  const std::string json = obs::RenderJson(entries);
  EXPECT_NE(json.find("\"tuner_migrations_total\": 1"), std::string::npos)
      << json;

  // Post-migration the cooldown gauge is rearmed.
  bool saw_cooldown = false;
  for (const auto& [name, value] : entries[0].snapshot.gauges) {
    if (name == "tuner_cooldown_polls_left") {
      saw_cooldown = true;
      EXPECT_DOUBLE_EQ(value, 2.0);
    }
  }
  EXPECT_TRUE(saw_cooldown);
}

TEST(TunerLoop, FprBreachStacksWhenTrainingSampleAvailableAndRecovers) {
  const uint64_t seed = TestSeed(9104);
  BBF_ANNOUNCE_SEED(seed);
  auto inner = std::make_unique<ShardedFilter>(
      512, 1, FamilyFactory("blocked-bloom", 0.25));
  ShardedFilter* sharded = inner.get();
  ASSERT_TRUE(sharded->EnableMigration());
  obs::InstrumentedFilter filter(std::move(inner), 0.25);

  const std::vector<uint64_t> keys = GenerateDistinctKeys(400, seed);
  for (uint64_t k : keys) ASSERT_TRUE(filter.Insert(k));

  // A hot-negative working set: in-domain keys the workload keeps
  // probing. Scoring them gives the estimator a solid (>=512 sample)
  // Wilson interval far above the 1% budget at epsilon 0.25.
  std::unordered_set<uint64_t> present(keys.begin(), keys.end());
  SplitMix64 rng(seed + 7);
  std::vector<uint64_t> hot_negatives;
  while (hot_negatives.size() < 900) {
    const uint64_t k = rng.Next();
    if (present.contains(k)) continue;
    if (!ObservedFprEstimator::InDomain(HashedKey(k))) continue;
    hot_negatives.push_back(k);
  }
  for (uint64_t k : hot_negatives) filter.Contains(k);
  {
    const auto sh = sharded->Stats()[0];
    ASSERT_GE(sh.fpr_negative_lookups, 512u);
    ASSERT_GT(sh.fpr_ci_low, 0.01);
  }

  tuning::TunerConfig cfg;
  cfg.fpr_budget = 0.01;
  cfg.adapt_candidates.clear();  // Force the FPR policies, not repeat-FP.
  cfg.training_sample = [&hot_negatives] { return hot_negatives; };
  tuning::Tuner tuner(filter, cfg);

  const auto r = tuner.Poll();
  EXPECT_EQ(r.decision.action, tuning::TunerAction::kMigrateStacked);
  EXPECT_EQ(r.decision.trigger, tuning::TunerTrigger::kFprBreach);
  ASSERT_TRUE(r.acted);
  ASSERT_TRUE(r.report.ok) << r.report.error;
  EXPECT_EQ(r.report.to_family, "stacked-serving");

  // Every acked key survived the stack swap.
  for (uint64_t k : keys) ASSERT_TRUE(filter.Contains(k));
  EXPECT_EQ(sharded->Stats()[0].family, "stacked-serving");

  // Replay the same hot-negative workload: the stacked front was trained
  // on exactly these keys, so the observed FPR lands under budget.
  for (uint64_t k : hot_negatives) filter.Contains(k);
  const auto after = sharded->Stats()[0];
  ASSERT_GE(after.fpr_negative_lookups, 512u);
  EXPECT_LT(after.observed_fpr, 0.01)
      << "stacked shard must recover under the FPR budget";
}

TEST(TunerLoop, StackedMigrationRefusesEraseWorkloads) {
  const uint64_t seed = TestSeed(9105);
  BBF_ANNOUNCE_SEED(seed);
  auto inner = std::make_unique<ShardedFilter>(
      512, 1, FamilyFactory("counting-quotient", 0.25));
  ShardedFilter* sharded = inner.get();
  ASSERT_TRUE(sharded->EnableMigration());
  obs::InstrumentedFilter filter(std::move(inner), 0.25);

  const std::vector<uint64_t> keys = GenerateDistinctKeys(400, seed);
  for (uint64_t k : keys) ASSERT_TRUE(filter.Insert(k));
  ASSERT_TRUE(filter.Erase(keys[0]));  // The journal now holds an erase.

  std::unordered_set<uint64_t> present(keys.begin(), keys.end());
  SplitMix64 rng(seed + 7);
  size_t scored = 0;
  while (scored < 900) {
    const uint64_t k = rng.Next();
    if (present.contains(k)) continue;
    if (!ObservedFprEstimator::InDomain(HashedKey(k))) continue;
    filter.Contains(k);
    ++scored;
  }
  ASSERT_GT(sharded->Stats()[0].fpr_ci_low, 0.01);

  tuning::TunerConfig cfg;
  cfg.fpr_budget = 0.01;
  cfg.adapt_candidates.clear();
  cfg.training_sample = [] { return std::vector<uint64_t>{1, 2, 3}; };
  tuning::Tuner tuner(filter, cfg);

  const auto r = tuner.Poll();
  EXPECT_EQ(r.decision.action, tuning::TunerAction::kMigrateStacked);
  ASSERT_TRUE(r.acted);
  // The insert-only guard aborts; the shard keeps serving on its family.
  EXPECT_FALSE(r.report.ok);
  EXPECT_NE(r.decision.reason.find("migration failed"), std::string::npos);
  EXPECT_EQ(sharded->Stats()[0].family, "counting-quotient");
  for (size_t i = 1; i < keys.size(); ++i) {
    ASSERT_TRUE(filter.Contains(keys[i]));
  }
  bool saw_failures = false;
  for (const auto& [name, value] : tuner.MetricsSnapshot().counters) {
    if (name == "tuner_migration_failures_total") {
      saw_failures = true;
      EXPECT_EQ(value, 1u);
    }
  }
  EXPECT_TRUE(saw_failures);
}

TEST(TunerLoop, StackedShardSnapshotReloadsThroughTheTunerTagBuilder) {
  const uint64_t seed = TestSeed(9106);
  BBF_ANNOUNCE_SEED(seed);
  auto inner = std::make_unique<ShardedFilter>(
      512, 1, FamilyFactory("blocked-bloom", 0.25));
  ShardedFilter* sharded = inner.get();
  ASSERT_TRUE(sharded->EnableMigration());
  obs::InstrumentedFilter filter(std::move(inner), 0.25);
  const std::vector<uint64_t> keys = GenerateDistinctKeys(300, seed);
  for (uint64_t k : keys) ASSERT_TRUE(filter.Insert(k));

  tuning::TunerConfig cfg;
  cfg.fpr_budget = 0.01;
  tuning::Tuner tuner(filter, cfg);
  // Stack the shard directly through the seam (policy exercised above).
  const auto report = sharded->MigrateShard(
      0,
      [](std::span<const FilterJournalOp> ops,
         uint64_t capacity) -> std::unique_ptr<Filter> {
        return std::make_unique<tuning::StackedServingFilter>(
            tuning::StackedServingFilter::NetPositives(ops),
            std::vector<uint64_t>{}, capacity,
            tuning::StackedServingFilter::Params{});
      },
      FamilyFactory("blocked-bloom", 0.01));
  ASSERT_TRUE(report.ok) << report.error;
  ASSERT_EQ(sharded->Stats()[0].family, "stacked-serving");

  std::ostringstream os;
  ASSERT_TRUE(sharded->Save(os));

  // A fresh tuner-managed filter reloads the stacked shard: the Tuner's
  // tag builder resolves "stacked-serving" (absent from the registry).
  auto inner2 = std::make_unique<ShardedFilter>(
      512, 1, FamilyFactory("blocked-bloom", 0.25));
  ShardedFilter* sharded2 = inner2.get();
  obs::InstrumentedFilter filter2(std::move(inner2), 0.25);
  tuning::Tuner tuner2(filter2, cfg);
  std::istringstream is(os.str());
  ShardedFilter::LoadReport load_report;
  ASSERT_TRUE(sharded2->LoadWithReport(is, &load_report));
  EXPECT_TRUE(load_report.AllHealthy());
  EXPECT_EQ(sharded2->Stats()[0].family, "stacked-serving");
  for (uint64_t k : keys) ASSERT_TRUE(filter2.Contains(k));
}

// --- The network control surface --------------------------------------------

TEST(TunerNet, TunerCtlIsUnsupportedWithoutATuner) {
  auto filter =
      std::make_unique<ShardedFilter>(1 << 12, 4, FamilyFactory("quotient", 0.01));
  net::Server server(filter.get());
  ASSERT_TRUE(server.Start());
  int sp[2];
  ASSERT_EQ(socketpair(AF_UNIX, SOCK_STREAM, 0, sp), 0);
  server.AdoptConnection(sp[1]);
  net::SyncClient client(sp[0]);
  std::string text;
  EXPECT_EQ(client.TunerCtl(net::kTunerCmdStatus, &text),
            net::FrameStatus::kUnsupported);
  server.Shutdown();
}

TEST(TunerNet, TunerCtlServesStatusManualPollAndRejectsUnknownCommands) {
  auto inner =
      std::make_unique<ShardedFilter>(1 << 12, 4, FamilyFactory("quotient", 0.01));
  ShardedFilter* sharded = inner.get();
  ASSERT_TRUE(sharded->EnableMigration());
  obs::InstrumentedFilter filter(std::move(inner), 0.01);
  tuning::Tuner tuner(filter);

  net::Server server(sharded);
  server.set_tuner_control(tuner.WireControl());
  ASSERT_TRUE(server.Start());
  int sp[2];
  ASSERT_EQ(socketpair(AF_UNIX, SOCK_STREAM, 0, sp), 0);
  server.AdoptConnection(sp[1]);
  net::SyncClient client(sp[0]);

  std::string text;
  ASSERT_EQ(client.TunerCtl(net::kTunerCmdStatus, &text),
            net::FrameStatus::kOk);
  EXPECT_NE(text.find("tuner polls="), std::string::npos) << text;
  EXPECT_NE(text.find("shard 0:"), std::string::npos) << text;

  ASSERT_EQ(client.TunerCtl(net::kTunerCmdPoll, &text), net::FrameStatus::kOk);
  EXPECT_NE(text.find("action=none"), std::string::npos) << text;
  EXPECT_NE(text.find("no policy tripped"), std::string::npos) << text;
  EXPECT_EQ(tuner.MetricsSnapshot().counters[0].value, 1u);  // One poll.

  ASSERT_EQ(client.TunerCtl(9, &text), net::FrameStatus::kOk);
  EXPECT_NE(text.find("unknown tuner command 9"), std::string::npos);

  bool saw_counter = false;
  for (const auto& [name, value] : server.MetricsSnap().counters) {
    if (name == "net_tuner_ctl_total") {
      saw_counter = true;
      EXPECT_EQ(value, 3u);
    }
  }
  EXPECT_TRUE(saw_counter);
  server.Shutdown();
}

}  // namespace
}  // namespace bbf
