// Factory-driven save/load property test: every filter family with
// snapshot support round-trips through the framed format (DESIGN.md §8)
// and answers queries identically afterwards — scalar and batch paths,
// point filters, static filters, range filters, and maplets.

#include <cstdint>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "core/factory.h"
#include "core/filter_io.h"
#include "maplet/maplet.h"
#include "range/memento.h"
#include "range/prefix_bloom_range.h"
#include "range/range_filter.h"
#include "staticf/ribbon_filter.h"
#include "staticf/xor_filter.h"
#include "util/random.h"

namespace bbf {
namespace {

std::vector<std::string_view> DynamicSnapshotTags() {
  std::vector<std::string_view> tags;
  for (std::string_view name : KnownFilterNames()) {
    tags.push_back(name == "dleft" ? "dleft-counting" : name);
  }
  tags.push_back("spectral-bloom");
  return tags;
}

std::string SaveToString(const Filter& f) {
  std::ostringstream ss;
  EXPECT_TRUE(f.Save(ss));
  return std::move(ss).str();
}

TEST(SnapshotRoundtrip, EveryFamilyAnswersIdenticallyAfterReload) {
  uint64_t tag_index = 0;
  for (std::string_view tag : DynamicSnapshotTags()) {
    SCOPED_TRACE(std::string(tag));
    std::unique_ptr<Filter> f = CreateFilterForTag(tag, 5000);
    ASSERT_NE(f, nullptr);
    SplitMix64 rng(0x90 + tag_index);
    std::vector<uint64_t> inserted;
    for (int i = 0; i < 2000; ++i) {
      const uint64_t key = rng.Next();
      if (f->Insert(key)) inserted.push_back(key);
    }
    ASSERT_FALSE(inserted.empty());

    const std::string blob = SaveToString(*f);
    std::istringstream is(blob);
    std::unique_ptr<Filter> g = LoadFilterSnapshot(is);
    ASSERT_NE(g, nullptr);
    EXPECT_EQ(g->Name(), tag);
    EXPECT_EQ(g->NumKeys(), f->NumKeys());
    EXPECT_EQ(g->SpaceBits(), f->SpaceBits());

    // No false negatives across the round trip.
    for (uint64_t key : inserted) ASSERT_TRUE(g->Contains(key)) << key;

    // Exact answer parity — positives and negatives alike — on a mixed
    // probe set, through both the scalar and the batch path.
    std::vector<uint64_t> probes = inserted;
    for (int i = 0; i < 2000; ++i) probes.push_back(rng.Next());
    std::vector<uint8_t> batch_f(probes.size());
    std::vector<uint8_t> batch_g(probes.size());
    f->ContainsMany(probes, batch_f.data());
    g->ContainsMany(probes, batch_g.data());
    for (size_t i = 0; i < probes.size(); ++i) {
      ASSERT_EQ(f->Contains(probes[i]), g->Contains(probes[i]))
          << "probe " << i;
      ASSERT_EQ(batch_f[i], batch_g[i]) << "batch probe " << i;
      ASSERT_EQ(batch_g[i] != 0, g->Contains(probes[i]))
          << "batch/scalar divergence " << i;
    }
    ++tag_index;
  }
}

TEST(SnapshotRoundtrip, CountingFamiliesPreserveCounts) {
  for (std::string_view tag :
       {"counting-bloom", "counting-quotient", "spectral-bloom"}) {
    SCOPED_TRACE(std::string(tag));
    std::unique_ptr<Filter> f = CreateFilterForTag(tag, 2000);
    ASSERT_NE(f, nullptr);
    SplitMix64 rng(0x11);
    std::vector<uint64_t> keys(300);
    for (uint64_t& k : keys) k = rng.Next();
    for (size_t i = 0; i < keys.size(); ++i) {
      for (size_t c = 0; c <= i % 4; ++c) f->Insert(keys[i]);
    }
    const std::string blob = SaveToString(*f);
    std::istringstream is(blob);
    std::unique_ptr<Filter> g = LoadFilterSnapshot(is);
    ASSERT_NE(g, nullptr);
    for (uint64_t k : keys) EXPECT_EQ(g->Count(k), f->Count(k));
  }
}

TEST(SnapshotRoundtrip, StaticFamiliesRoundTrip) {
  SplitMix64 rng(0x22);
  std::vector<uint64_t> keys(1500);
  for (uint64_t& k : keys) k = rng.Next();

  const XorFilter xf(keys, 12);
  const RibbonFilter rf(keys, 12);
  const Filter* filters[] = {&xf, &rf};
  for (const Filter* f : filters) {
    SCOPED_TRACE(std::string(f->Name()));
    const std::string blob = SaveToString(*f);
    std::istringstream is(blob);
    std::unique_ptr<Filter> g = LoadFilterSnapshot(is);
    ASSERT_NE(g, nullptr);
    EXPECT_EQ(g->Name(), f->Name());
    EXPECT_EQ(g->NumKeys(), f->NumKeys());
    EXPECT_EQ(g->SpaceBits(), f->SpaceBits());
    for (uint64_t k : keys) ASSERT_TRUE(g->Contains(k));
    for (int i = 0; i < 2000; ++i) {
      const uint64_t probe = rng.Next();
      ASSERT_EQ(f->Contains(probe), g->Contains(probe));
    }
  }
}

TEST(SnapshotRoundtrip, RangeFilterRoundTrips) {
  SplitMix64 rng(0x33);
  std::vector<uint64_t> keys(1000);
  for (uint64_t& k : keys) k = rng.Next();
  const PrefixBloomRangeFilter f(keys, 16, 10.0);

  std::ostringstream ss;
  ASSERT_TRUE(f.Save(ss));
  PrefixBloomRangeFilter g({}, 8, 8.0);
  std::istringstream is(std::move(ss).str());
  ASSERT_TRUE(g.Load(is));
  EXPECT_EQ(g.SpaceBits(), f.SpaceBits());
  for (int i = 0; i < 2000; ++i) {
    const uint64_t lo = rng.Next();
    const uint64_t span = rng.NextBelow(uint64_t{1} << 50);
    const uint64_t hi = lo + span < lo ? ~uint64_t{0} : lo + span;
    ASSERT_EQ(f.MayContainRange(lo, hi), g.MayContainRange(lo, hi));
  }
  for (uint64_t k : keys) ASSERT_TRUE(g.MayContain(k));
}

TEST(SnapshotRoundtrip, MementoRangeAnswersSurviveReload) {
  SplitMix64 rng(0x55);
  std::vector<uint64_t> keys(2000);
  for (uint64_t& k : keys) k = rng.Next();
  MementoFilter f = MementoFilter::ForCapacity(keys.size(), 0.01);
  for (uint64_t k : keys) ASSERT_TRUE(f.AddKey(k));

  // Direct reload into a differently-shaped instance.
  std::ostringstream ss;
  ASSERT_TRUE(f.Save(ss));
  const std::string blob = std::move(ss).str();
  MementoFilter g(/*q_bits=*/6, /*r_bits=*/4);
  {
    std::istringstream is(blob);
    ASSERT_TRUE(g.Load(is));
  }
  EXPECT_EQ(g.NumKeys(), f.NumKeys());
  EXPECT_EQ(g.SpaceBits(), f.SpaceBits());

  // The factory path must also resurrect it, and the resurrected Filter
  // must still expose the range surface through the RangeFilter base.
  std::istringstream is(blob);
  std::unique_ptr<Filter> h = LoadFilterSnapshot(is);
  ASSERT_NE(h, nullptr);
  EXPECT_EQ(h->Name(), "memento");
  auto* h_range = dynamic_cast<RangeFilter*>(h.get());
  ASSERT_NE(h_range, nullptr);

  // Exact range-answer parity — positives and negatives — across both
  // reload paths, short windows and multi-prefix spans alike.
  for (uint64_t k : keys) {
    ASSERT_TRUE(g.MayContainRange(k, k)) << k;
    ASSERT_TRUE(h_range->MayContainRange(k, k)) << k;
  }
  for (int i = 0; i < 4000; ++i) {
    const uint64_t lo = rng.Next();
    const uint64_t span = rng.NextBelow(uint64_t{1} << 12);
    const uint64_t hi = lo + span < lo ? ~uint64_t{0} : lo + span;
    const bool want = f.MayContainRange(lo, hi);
    ASSERT_EQ(want, g.MayContainRange(lo, hi)) << lo << ".." << hi;
    ASSERT_EQ(want, h_range->MayContainRange(lo, hi)) << lo << ".." << hi;
  }
}

TEST(SnapshotRoundtrip, MapletsRoundTrip) {
  struct Case {
    std::unique_ptr<Maplet> original;
    std::unique_ptr<Maplet> reloaded;
  };
  Case cases[] = {
      {MakeQuotientMaplet(2000, 0.01, 8), MakeQuotientMaplet(16, 0.5, 4)},
      {MakeCuckooMaplet(2000, 12, 8), MakeCuckooMaplet(16, 4, 4)},
  };
  for (Case& c : cases) {
    SCOPED_TRACE(std::string(c.original->Name()));
    SplitMix64 rng(0x44);
    std::vector<uint64_t> keys(800);
    for (size_t i = 0; i < keys.size(); ++i) {
      keys[i] = rng.Next();
      ASSERT_TRUE(c.original->Insert(keys[i], i % 251));
    }
    std::ostringstream ss;
    ASSERT_TRUE(c.original->Save(ss));
    std::istringstream is(std::move(ss).str());
    ASSERT_TRUE(c.reloaded->Load(is));
    EXPECT_EQ(c.reloaded->SpaceBits(), c.original->SpaceBits());
    for (uint64_t k : keys) {
      EXPECT_EQ(c.reloaded->Lookup(k), c.original->Lookup(k));
    }
    for (int i = 0; i < 1000; ++i) {
      const uint64_t probe = rng.Next();
      EXPECT_EQ(c.reloaded->Lookup(probe), c.original->Lookup(probe));
    }
  }
}

TEST(SnapshotRoundtrip, MapletRejectsWrongFamily) {
  auto qm = MakeQuotientMaplet(100, 0.01, 8);
  qm->Insert(1, 2);
  std::ostringstream ss;
  ASSERT_TRUE(qm->Save(ss));
  auto cm = MakeCuckooMaplet(100, 12, 8);
  std::istringstream is(std::move(ss).str());
  EXPECT_FALSE(cm->Load(is));
}

TEST(SnapshotRoundtrip, BloomierMapletReportsUnsupported) {
  auto bloomier = MakeBloomierMaplet({{1, 2}, {3, 4}}, 8);
  std::ostringstream ss;
  EXPECT_FALSE(bloomier->Save(ss));
  EXPECT_TRUE(ss.str().empty());  // No partial frame written.
}

}  // namespace
}  // namespace bbf
