// Corpus-driven fuzzing of the wire codec (DESIGN.md §14): every framed
// byte the server will ever parse goes through CutFrame and the payload
// decoders, so those functions are hammered here with the generalized
// fault corpus (tests/fault_injection.h FrameSpec) plus raw random bytes
// — no crashes, no hostile-length allocations, and incremental feeding
// must agree byte-for-byte with one-shot parsing. A live-server replay
// at the end proves the loop survives the same corpus over a socket.

#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <cstdint>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "apps/net/client.h"
#include "apps/net/server.h"
#include "apps/net/wire.h"
#include "core/sharded_filter.h"
#include "fault_injection.h"
#include "quotient/quotient_filter.h"
#include "test_seed.h"
#include "util/random.h"

namespace bbf::net {
namespace {

fault::FrameSpec WireSpec() {
  fault::FrameSpec spec;
  spec.field_boundaries.assign(std::begin(kWireFieldBoundaries),
                               std::end(kWireFieldBoundaries));
  spec.length_field_offsets = {kWireCountOffset, kWireLenOffset};
  spec.checksum_offset = kWireChecksumOffset;
  return spec;
}

std::vector<std::string> SeedFrames(uint64_t seed) {
  SplitMix64 rng(seed);
  std::vector<uint64_t> keys(257);
  for (auto& k : keys) k = rng.Next();
  std::vector<std::string> strings = {"a", std::string(300, 'x'), "",
                                      "bbf.example/path?q=1"};
  return {
      EncodeFrame(Opcode::kPing, FrameStatus::kOk, 0, 1, ""),
      EncodeFrame(Opcode::kLookup, FrameStatus::kOk,
                  static_cast<uint32_t>(keys.size()), 2,
                  EncodeKeysPayload(keys)),
      EncodeFrame(Opcode::kInsert, FrameStatus::kOk, 1, 3,
                  EncodeKeysPayload(std::vector<uint64_t>{42})),
      EncodeFrame(Opcode::kBlockCheck, FrameStatus::kOk,
                  static_cast<uint32_t>(strings.size()), 4,
                  EncodeStringsPayload(strings)),
      EncodeFrame(Opcode::kMetrics, FrameStatus::kOk, 0, 5, ""),
  };
}

/// CutFrame's structural invariants, whatever the input: consumed stays
/// inside the buffer, exposed payloads stay inside the buffer and under
/// the cap, and the classification is internally consistent.
void CheckCutInvariants(const std::string& blob) {
  std::string_view rest(blob);
  int frames = 0;
  while (true) {
    FrameHeader h;
    std::string_view payload;
    size_t consumed = 0;
    const CutResult res = CutFrame(rest, &h, &payload, &consumed);
    if (res == CutResult::kNeedMore || res == CutResult::kMalformed) break;
    ASSERT_EQ(res, CutResult::kFrame);
    ASSERT_LE(consumed, rest.size());
    ASSERT_GE(consumed, kWireHeaderBytes);
    ASSERT_LE(h.payload_len, kMaxWirePayloadBytes);
    ASSERT_EQ(payload.size(), h.payload_len);
    ASSERT_GE(payload.data(), rest.data());
    ASSERT_LE(payload.data() + payload.size(), rest.data() + rest.size());
    rest.remove_prefix(consumed);
    ASSERT_LT(++frames, 1000);
  }
}

TEST(WireFuzz, CorpusNeverBreaksCutFrameInvariants) {
  const uint64_t seed = TestSeed(910);
  BBF_ANNOUNCE_SEED(seed);
  const auto spec = WireSpec();
  size_t total = 0;
  for (const auto& frame : SeedFrames(seed)) {
    for (const auto& c : fault::FrameCorpus(frame, spec, seed)) {
      SCOPED_TRACE("corruption: " + c.name);
      CheckCutInvariants(c.blob);
      ++total;
    }
  }
  EXPECT_GT(total, 500u);
}

TEST(WireFuzz, RandomBytesNeverBreakCutFrameInvariants) {
  const uint64_t seed = TestSeed(911);
  BBF_ANNOUNCE_SEED(seed);
  SplitMix64 rng(seed);
  for (int i = 0; i < 256; ++i) {
    std::string blob(rng.NextBelow(300), '\0');
    for (auto& b : blob) b = static_cast<char>(rng.Next());
    // Half the time, plant a real magic so parsing goes deeper.
    if (i % 2 == 0 && blob.size() >= 8) {
      for (int j = 0; j < 8; ++j) {
        blob[j] = static_cast<char>((kWireMagic >> (8 * j)) & 0xFF);
      }
    }
    CheckCutInvariants(blob);
  }
}

TEST(WireFuzz, IncrementalFeedAgreesWithOneShotParse) {
  const uint64_t seed = TestSeed(912);
  BBF_ANNOUNCE_SEED(seed);
  const auto spec = WireSpec();
  for (const auto& frame : SeedFrames(seed)) {
    auto corpus = fault::FrameCorpus(frame, spec, seed);
    corpus.push_back(fault::Corruption{"pristine", frame});
    for (const auto& c : corpus) {
      SCOPED_TRACE("corruption: " + c.name);
      FrameHeader h;
      std::string_view payload;
      size_t consumed = 0;
      const CutResult oneshot = CutFrame(c.blob, &h, &payload, &consumed);

      // Byte-at-a-time: the verdict must never regress (kNeedMore may
      // become terminal, a terminal verdict is final) and must land on
      // the one-shot answer — the server's incremental loop depends on
      // this equivalence.
      CutResult verdict = CutResult::kNeedMore;
      for (size_t n = 0; n <= c.blob.size(); ++n) {
        FrameHeader ih;
        std::string_view ipayload;
        size_t iconsumed = 0;
        const CutResult step = CutFrame(std::string_view(c.blob).substr(0, n),
                                        &ih, &ipayload, &iconsumed);
        if (verdict != CutResult::kNeedMore) {
          ASSERT_EQ(step, verdict) << "verdict flapped at byte " << n;
        }
        verdict = step;
      }
      ASSERT_EQ(verdict, oneshot);
    }
  }
}

TEST(WireFuzz, HostileLengthsRejectOnHeaderAlone) {
  // 40 header bytes claiming huge payloads: the codec must return
  // kMalformed immediately — kNeedMore would have the server buffering
  // toward a phantom terabyte.
  for (uint64_t bomb :
       {kMaxWirePayloadBytes + 1, uint64_t{1} << 32, uint64_t{1} << 62,
        ~uint64_t{0}}) {
    std::string header =
        EncodeFrame(Opcode::kPing, FrameStatus::kOk, 0, 1, "");
    for (int i = 0; i < 8; ++i) {
      header[kWireLenOffset + i] = static_cast<char>((bomb >> (8 * i)) & 0xFF);
    }
    FrameHeader h;
    std::string_view payload;
    size_t consumed = 0;
    EXPECT_EQ(CutFrame(header, &h, &payload, &consumed),
              CutResult::kMalformed)
        << "payload_len " << bomb << " was not rejected on sight";
  }
  // Hostile count with a plausible payload_len: same instant rejection.
  std::string header = EncodeFrame(Opcode::kLookup, FrameStatus::kOk, 0, 1, "");
  const uint32_t count_bomb = kMaxWireBatchCount + 1;
  for (int i = 0; i < 4; ++i) {
    header[kWireCountOffset + i] =
        static_cast<char>((count_bomb >> (8 * i)) & 0xFF);
  }
  FrameHeader h;
  std::string_view payload;
  size_t consumed = 0;
  EXPECT_EQ(CutFrame(header, &h, &payload, &consumed), CutResult::kMalformed);
}

TEST(WireFuzz, PayloadDecodersRejectEveryMismatchWithoutCrashing) {
  const uint64_t seed = TestSeed(913);
  BBF_ANNOUNCE_SEED(seed);
  SplitMix64 rng(seed);

  // Valid round trips first: the decoders must accept their encoders.
  std::vector<uint64_t> keys(100);
  for (auto& k : keys) k = rng.Next();
  FrameHeader h;
  h.count = 100;
  std::vector<uint64_t> decoded;
  ASSERT_TRUE(DecodeKeysPayload(h, EncodeKeysPayload(keys), &decoded));
  EXPECT_EQ(decoded, keys);

  std::vector<std::string> strings = {"", "abc", std::string(1000, 'q')};
  FrameHeader hs;
  hs.count = 3;
  std::vector<std::string_view> sdecoded;
  const std::string spayload = EncodeStringsPayload(strings);
  ASSERT_TRUE(DecodeStringsPayload(hs, spayload, &sdecoded));
  ASSERT_EQ(sdecoded.size(), 3u);
  EXPECT_EQ(sdecoded[2], strings[2]);

  // Then fuzz: random counts against random payloads. Acceptance is only
  // legal when the layout truly matches.
  for (int i = 0; i < 512; ++i) {
    std::string payload(rng.NextBelow(200), '\0');
    for (auto& b : payload) b = static_cast<char>(rng.Next());
    FrameHeader fh;
    fh.count = static_cast<uint32_t>(rng.NextBelow(80));
    fh.payload_len = payload.size();
    std::vector<uint64_t> k2;
    if (DecodeKeysPayload(fh, payload, &k2)) {
      ASSERT_EQ(payload.size(), static_cast<size_t>(fh.count) * 8);
      ASSERT_EQ(k2.size(), fh.count);
    }
    std::vector<std::string_view> s2;
    if (DecodeStringsPayload(fh, payload, &s2)) {
      size_t total = 0;
      for (const auto& s : s2) total += 4 + s.size();
      ASSERT_EQ(total, payload.size());  // No trailing bytes slipped by.
    }
  }
}

TEST(WireFuzz, LiveServerSurvivesWholeCorpusAndStaysResponsive) {
  const uint64_t seed = TestSeed(914);
  BBF_ANNOUNCE_SEED(seed);
  ShardedFilter filter(1 << 16, 4, [](uint64_t cap) -> std::unique_ptr<Filter> {
    return std::make_unique<QuotientFilter>(
        QuotientFilter::ForCapacity(cap, 0.01));
  });
  Server server(&filter);
  ASSERT_TRUE(server.Listen(0));
  ASSERT_TRUE(server.Start());

  const auto spec = WireSpec();
  size_t replayed = 0;
  for (const auto& frame : SeedFrames(seed)) {
    for (const auto& c : fault::FrameCorpus(frame, spec, seed)) {
      const int fd = SyncClient::ConnectTcp(server.port());
      ASSERT_GE(fd, 0);
      timeval tv{};
      tv.tv_sec = 5;
      setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof(tv));
      size_t off = 0;
      while (off < c.blob.size()) {
        const ssize_t n = ::send(fd, c.blob.data() + off,
                                 c.blob.size() - off, MSG_NOSIGNAL);
        if (n <= 0) break;  // Server already slammed the door: fine.
        off += static_cast<size_t>(n);
      }
      ::shutdown(fd, SHUT_WR);
      char sink[4096];
      while (::recv(fd, sink, sizeof(sink), 0) > 0) {
      }
      ::close(fd);
      if (++replayed % 64 == 0) {
        SyncClient probe(SyncClient::ConnectTcp(server.port()));
        ASSERT_EQ(probe.Ping(), FrameStatus::kOk)
            << "server unresponsive after " << replayed << " corruptions"
            << " (last: " << c.name << ")";
      }
    }
  }
  EXPECT_GT(replayed, 500u);
  SyncClient probe(SyncClient::ConnectTcp(server.port()));
  EXPECT_EQ(probe.Ping(), FrameStatus::kOk);
  server.Shutdown();
}

}  // namespace
}  // namespace bbf::net
