// Tests for the cuckoo-filter family: base filter, maplet, adaptive.

#include <algorithm>
#include <cstdint>
#include <unordered_map>
#include <vector>

#include <gtest/gtest.h>

#include "cuckoo/adaptive_cuckoo_filter.h"
#include "cuckoo/cuckoo_filter.h"
#include "cuckoo/cuckoo_maplet.h"
#include "util/random.h"
#include "workload/generators.h"

namespace bbf {
namespace {

TEST(CuckooFilter, BasicRoundTrip) {
  CuckooFilter f(1000, 12);
  EXPECT_FALSE(f.Contains(5));
  EXPECT_TRUE(f.Insert(5));
  EXPECT_TRUE(f.Contains(5));
  EXPECT_TRUE(f.Erase(5));
  EXPECT_FALSE(f.Contains(5));
  EXPECT_FALSE(f.Erase(5));
}

TEST(CuckooFilter, NoFalseNegativesAtHighLoad) {
  CuckooFilter f(50000, 12);
  const auto keys = GenerateDistinctKeys(50000);
  uint64_t inserted = 0;
  for (uint64_t k : keys) inserted += f.Insert(k);
  EXPECT_EQ(inserted, keys.size());  // 95% sizing leaves room for all.
  for (uint64_t k : keys) ASSERT_TRUE(f.Contains(k));
}

TEST(CuckooFilter, FprNearTheory) {
  CuckooFilter f(50000, 12);
  const auto keys = GenerateDistinctKeys(50000);
  for (uint64_t k : keys) f.Insert(k);
  const auto negatives = GenerateNegativeKeys(keys, 200000);
  uint64_t fp = 0;
  for (uint64_t k : negatives) fp += f.Contains(k);
  const double fpr = static_cast<double>(fp) / negatives.size();
  // ~ 8/2^12 = 0.002 at full-ish load.
  EXPECT_LT(fpr, 0.006);
}

TEST(CuckooFilter, ForFprSizing) {
  CuckooFilter f = CuckooFilter::ForFpr(10000, 0.01);
  const auto keys = GenerateDistinctKeys(10000);
  for (uint64_t k : keys) ASSERT_TRUE(f.Insert(k));
  const auto negatives = GenerateNegativeKeys(keys, 100000);
  uint64_t fp = 0;
  for (uint64_t k : negatives) fp += f.Contains(k);
  EXPECT_LT(static_cast<double>(fp) / negatives.size(), 0.02);
}

TEST(CuckooFilter, DuplicatesCountedUpToBucketCapacity) {
  CuckooFilter f(1000, 12);
  for (int i = 0; i < 5; ++i) EXPECT_TRUE(f.Insert(42));
  EXPECT_GE(f.Count(42), 5u);
  for (int i = 0; i < 5; ++i) EXPECT_TRUE(f.Erase(42));
  EXPECT_FALSE(f.Contains(42));
}

TEST(CuckooFilter, ChurnModelAgainstReference) {
  CuckooFilter f(4000, 14);
  std::unordered_map<uint64_t, uint64_t> ref;
  SplitMix64 rng(21);
  for (int op = 0; op < 50000; ++op) {
    const uint64_t key = rng.NextBelow(3000);
    if (rng.NextDouble() < 0.55) {
      if (f.LoadFactor() < 0.9 && f.Insert(key)) ++ref[key];
    } else {
      auto it = ref.find(key);
      if (it != ref.end()) {
        ASSERT_TRUE(f.Erase(key)) << op;
        if (--it->second == 0) ref.erase(it);
      }
    }
  }
  for (const auto& [k, c] : ref) {
    ASSERT_TRUE(f.Contains(k));
    ASSERT_GE(f.Count(k), c);
  }
}

TEST(CuckooMaplet, StoreAndRetrieve) {
  CuckooMaplet m(10000, 14, 8);
  const auto keys = GenerateDistinctKeys(8000);
  SplitMix64 rng(2);
  std::unordered_map<uint64_t, uint64_t> truth;
  for (uint64_t k : keys) {
    const uint64_t v = rng.NextBelow(256);
    ASSERT_TRUE(m.Insert(k, v));
    truth[k] = v;
  }
  double prs = 0;
  for (const auto& [k, v] : truth) {
    const auto vals = m.Lookup(k);
    ASSERT_FALSE(vals.empty());
    EXPECT_NE(std::find(vals.begin(), vals.end(), v), vals.end());
    prs += vals.size();
  }
  EXPECT_LT(prs / truth.size(), 1.05);  // PRS = 1 + eps.
}

TEST(CuckooMaplet, EraseByValue) {
  CuckooMaplet m(100, 12, 8);
  m.Insert(1, 10);
  m.Insert(1, 20);
  EXPECT_EQ(m.Lookup(1).size(), 2u);
  EXPECT_TRUE(m.Erase(1, 10));
  const auto vals = m.Lookup(1);
  ASSERT_EQ(vals.size(), 1u);
  EXPECT_EQ(vals[0], 20u);
}

TEST(AdaptiveCuckoo, BasicMembership) {
  AdaptiveCuckooFilter f(5000, 10);
  const auto keys = GenerateDistinctKeys(4000);
  for (uint64_t k : keys) ASSERT_TRUE(f.Insert(k));
  for (uint64_t k : keys) ASSERT_TRUE(f.Contains(k));
}

TEST(AdaptiveCuckoo, AdaptsAwayFalsePositives) {
  AdaptiveCuckooFilter f(5000, 10);
  const auto keys = GenerateDistinctKeys(4000);
  for (uint64_t k : keys) ASSERT_TRUE(f.Insert(k));
  const auto negatives = GenerateNegativeKeys(keys, 50000);
  uint64_t fixed = 0;
  uint64_t fps = 0;
  for (uint64_t k : negatives) {
    if (f.Contains(k)) {
      ++fps;
      if (f.ReportFalsePositive(k)) ++fixed;
    }
  }
  ASSERT_GT(fps, 0u);  // 10-bit fingerprints: some FPs must occur.
  // Nearly all reported FPs are fixed by one selector bump.
  EXPECT_GT(static_cast<double>(fixed) / fps, 0.95);
  // Members must remain present after adaptation (no false negatives).
  for (uint64_t k : keys) ASSERT_TRUE(f.Contains(k));
}

TEST(AdaptiveCuckoo, RepeatedQueryStopsBeingFalsePositive) {
  AdaptiveCuckooFilter f(2000, 8);
  const auto keys = GenerateDistinctKeys(1500);
  for (uint64_t k : keys) ASSERT_TRUE(f.Insert(k));
  const auto negatives = GenerateNegativeKeys(keys, 20000);
  // Find an FP, report it, and requery many times: a plain filter would
  // pay the FP on every repeat; the adaptive one must not.
  for (uint64_t k : negatives) {
    if (f.Contains(k)) {
      f.ReportFalsePositive(k);
      int repeats_fp = 0;
      for (int i = 0; i < 100; ++i) repeats_fp += f.Contains(k);
      EXPECT_EQ(repeats_fp, 0) << "key " << k;
      break;
    }
  }
}

TEST(AdaptiveCuckoo, EraseIsExactViaRemoteStore) {
  AdaptiveCuckooFilter f(1000, 8);
  f.Insert(5);
  f.Insert(6);
  EXPECT_TRUE(f.Erase(5));
  EXPECT_FALSE(f.Erase(5));
  EXPECT_TRUE(f.Contains(6));
  EXPECT_EQ(f.NumKeys(), 1u);
}

// --- Eviction-loop unwind regressions -------------------------------------
//
// Saturate a deliberately tiny table far past capacity so the stash fills
// and kick chains dead-end. A failed insert must leave the table exactly as
// it was: every previously-acknowledged key stays queryable and NumKeys
// matches the acknowledgement count. Before the unwind fix, a dead-ended
// chain (or a chain refused only because the stash was full) could drop the
// last evicted victim — a false negative for an acked key.

TEST(CuckooFilter, SaturatingInsertsNeverDropAckedKeys) {
  CuckooFilter f(64, 10);
  const auto keys = GenerateDistinctKeys(4000, /*seed=*/77);
  std::vector<uint64_t> acked;
  uint64_t rejected = 0;
  for (uint64_t k : keys) {
    if (f.Insert(k)) {
      acked.push_back(k);
    } else {
      ++rejected;
    }
  }
  ASSERT_GT(rejected, 0u) << "test must actually saturate the table";
  EXPECT_EQ(f.NumKeys(), acked.size());
  for (uint64_t k : acked) {
    ASSERT_TRUE(f.Contains(k)) << "acked key " << k << " went missing";
  }
}

TEST(AdaptiveCuckoo, SaturatingInsertsNeverDropAckedKeys) {
  AdaptiveCuckooFilter f(64, 10);
  const auto keys = GenerateDistinctKeys(4000, /*seed=*/78);
  std::vector<uint64_t> acked;
  uint64_t rejected = 0;
  for (uint64_t k : keys) {
    if (f.Insert(k)) {
      acked.push_back(k);
    } else {
      ++rejected;
    }
  }
  ASSERT_GT(rejected, 0u) << "test must actually saturate the table";
  EXPECT_EQ(f.NumKeys(), acked.size());
  for (uint64_t k : acked) {
    ASSERT_TRUE(f.Contains(k)) << "acked key " << k << " went missing";
  }
  // The remote store makes Contains exact for erase purposes, so every
  // acked key must also still be erasable — a stronger "nothing was
  // dropped" check than the fingerprint probe alone.
  for (uint64_t k : acked) {
    ASSERT_TRUE(f.Erase(k)) << "acked key " << k << " not erasable";
  }
  EXPECT_EQ(f.NumKeys(), 0u);
}

TEST(CuckooMaplet, SaturatingInsertsNeverDropAckedPairs) {
  CuckooMaplet m(64, 12, 8);
  const auto keys = GenerateDistinctKeys(4000, /*seed=*/79);
  std::vector<uint64_t> acked;
  uint64_t rejected = 0;
  for (uint64_t k : keys) {
    if (m.Insert(k, k & 0xFF)) {
      acked.push_back(k);
    } else {
      ++rejected;
    }
  }
  ASSERT_GT(rejected, 0u) << "test must actually saturate the table";
  EXPECT_EQ(m.NumEntries(), acked.size());
  for (uint64_t k : acked) {
    const auto values = m.Lookup(k);
    ASSERT_TRUE(std::find(values.begin(), values.end(), k & 0xFF) !=
                values.end())
        << "acked pair for key " << k << " went missing";
  }
}

}  // namespace
}  // namespace bbf
