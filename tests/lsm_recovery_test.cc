// Crash-safety and degraded-mode recovery tests for the LSM filter
// lifecycle (DESIGN.md §13): a crash-point fault sweep over every
// persistence mutation (old-or-new-generation atomicity, zero lost acked
// keys), plus at-rest corruption of every file kind (quarantined filters
// served filterless, manifest fallback, clean failure — never wrong
// answers).

#include <cstdint>
#include <filesystem>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include <gtest/gtest.h>

#include "apps/lsm/lsm_tree.h"
#include "apps/lsm/manifest.h"
#include "fault_injection.h"
#include "obs/export.h"
#include "test_seed.h"
#include "util/random.h"

namespace bbf::lsm {
namespace {

// --- Crash-injecting storage environment -------------------------------------

/// Wraps the real environment and crashes at an exact mutation index: the
/// armed op fails (optionally tearing a write in half first — the torn-
/// sector crash), and every later mutation fails too, like a process that
/// died mid-syscall. Reads never fault (recovery runs post-mortem).
class CrashEnv : public StorageEnv {
 public:
  CrashEnv() : base_(RealEnv()) {}

  /// Crash at the `crash_at`-th mutating op from now (0-based).
  void Arm(uint64_t crash_at, bool torn) {
    armed_ = true;
    torn_ = torn;
    crash_at_ = crash_at;
    mutations_ = 0;
    crashed_ = false;
  }
  /// Healthy mode; also used for post-crash recovery.
  void Disarm() {
    armed_ = false;
    crashed_ = false;
    mutations_ = 0;
    ops_.clear();
  }
  uint64_t mutations() const { return mutations_; }
  bool crashed() const { return crashed_; }
  /// One kind char per mutation seen since Disarm/Arm: 'a'ppend,
  /// 'w'rite, 'r'ename, 'd'elete.
  const std::vector<char>& ops() const { return ops_; }

  bool CreateDir(const std::string& path) override {
    return base_->CreateDir(path);  // Setup, not a crash point.
  }
  bool WriteFile(const std::string& path, std::string_view bytes) override {
    switch (Tick('w')) {
      case Fate::kFail:
        return false;
      case Fate::kTear:
        base_->WriteFile(path, bytes.substr(0, bytes.size() / 2));
        return false;
      case Fate::kRun:
        return base_->WriteFile(path, bytes);
    }
    return false;
  }
  bool AppendFile(const std::string& path, std::string_view bytes) override {
    switch (Tick('a')) {
      case Fate::kFail:
        return false;
      case Fate::kTear:
        base_->AppendFile(path, bytes.substr(0, bytes.size() / 2));
        return false;
      case Fate::kRun:
        return base_->AppendFile(path, bytes);
    }
    return false;
  }
  bool Rename(const std::string& from, const std::string& to) override {
    // Renames are atomic: a crash either skips or completes them, never
    // tears them.
    if (Tick('r') != Fate::kRun) return false;
    return base_->Rename(from, to);
  }
  bool Remove(const std::string& path) override {
    if (Tick('d') != Fate::kRun) return false;
    return base_->Remove(path);
  }

  bool ReadFileBytes(const std::string& path, std::string* out) const override {
    return base_->ReadFileBytes(path, out);
  }
  bool Exists(const std::string& path) const override {
    return base_->Exists(path);
  }
  std::vector<std::string> ListDir(const std::string& dir) const override {
    return base_->ListDir(dir);
  }

 private:
  enum class Fate { kRun, kFail, kTear };

  Fate Tick(char kind) {
    ops_.push_back(kind);
    const uint64_t idx = mutations_++;
    if (crashed_) return Fate::kFail;
    if (armed_ && idx == crash_at_) {
      crashed_ = true;
      return torn_ ? Fate::kTear : Fate::kFail;
    }
    return Fate::kRun;
  }

  StorageEnv* base_;
  bool armed_ = false;
  bool torn_ = false;
  bool crashed_ = false;
  uint64_t crash_at_ = 0;
  uint64_t mutations_ = 0;
  std::vector<char> ops_;
};

// --- Shared helpers ----------------------------------------------------------

std::string FreshDir(const std::string& name) {
  const std::string dir = ::testing::TempDir() + "bbf_lsm_" + name;
  std::filesystem::remove_all(dir);
  return dir;
}

uint64_t ValueOf(uint64_t key) { return key * 2654435761u + 17; }

/// Fills a tree with `n` distinct keys (value = ValueOf(key)) and returns
/// the keys inserted.
std::vector<uint64_t> Populate(LsmTree* db, int n, uint64_t seed) {
  SplitMix64 rng(seed);
  std::vector<uint64_t> keys;
  keys.reserve(n);
  for (int i = 0; i < n; ++i) {
    const uint64_t k = rng.NextBelow(uint64_t{1} << 40);
    db->Put(k, ValueOf(k));
    keys.push_back(k);
  }
  return keys;
}

std::vector<std::string> FilesMatching(const std::string& dir,
                                       std::string_view suffix) {
  std::vector<std::string> out;
  for (const std::string& name : RealEnv()->ListDir(dir)) {
    if (name.size() >= suffix.size() &&
        name.substr(name.size() - suffix.size()) == suffix) {
      out.push_back(dir + "/" + name);
    }
  }
  return out;
}

void CorruptFile(const std::string& path, uint64_t seed) {
  std::string bytes;
  ASSERT_TRUE(fault::ReadFileBytes(path, &bytes)) << path;
  const auto faults = fault::BitFlipCorruptions(bytes, seed, 1);
  ASSERT_FALSE(faults.empty());
  ASSERT_TRUE(fault::WriteFileBytes(path, faults[0].blob)) << path;
}

// --- Round-trip and WAL basics -----------------------------------------------

TEST(LsmRecovery, PersistAndReopenRoundTrip) {
  const uint64_t seed = TestSeed(0xD15C);
  BBF_ANNOUNCE_SEED(seed);
  LsmOptions o;
  o.memtable_entries = 128;
  o.range_filter = RangeFilterKind::kPrefixBloom;
  o.dir = FreshDir("roundtrip");
  std::vector<uint64_t> keys;
  {
    auto db = LsmTree::Open(o);
    ASSERT_NE(db, nullptr);
    keys = Populate(db.get(), 3000, seed);
    EXPECT_GT(db->generation(), 0u);
  }
  auto db = LsmTree::Open(o);
  ASSERT_NE(db, nullptr);
  EXPECT_GT(db->generation(), 0u);
  EXPECT_EQ(db->recovery().filters_quarantined, 0u);
  for (uint64_t k : keys) {
    ASSERT_EQ(db->Get(k), std::optional<uint64_t>(ValueOf(k))) << k;
  }
  // Scans recover too (the range filters loaded or rebuilt).
  EXPECT_EQ(db->Scan(0, ~uint64_t{0}).size(), keys.size());
  std::filesystem::remove_all(o.dir);
}

TEST(LsmRecovery, WalReplayRecoversUnflushedAckedOps) {
  LsmOptions o;
  o.memtable_entries = 1024;  // Nothing below will flush.
  o.dir = FreshDir("wal");
  {
    auto db = LsmTree::Open(o);
    ASSERT_NE(db, nullptr);
    for (uint64_t k = 1; k <= 200; ++k) ASSERT_TRUE(db->Put(k, ValueOf(k)));
    ASSERT_TRUE(db->Delete(7));
    EXPECT_EQ(db->generation(), 0u);  // Never flushed, never committed.
  }
  auto db = LsmTree::Open(o);
  ASSERT_NE(db, nullptr);
  EXPECT_EQ(db->recovery().wal_records_replayed, 201u);
  EXPECT_EQ(db->Get(7), std::nullopt);
  for (uint64_t k = 1; k <= 200; ++k) {
    if (k == 7) continue;
    ASSERT_EQ(db->Get(k), std::optional<uint64_t>(ValueOf(k))) << k;
  }
  std::filesystem::remove_all(o.dir);
}

TEST(LsmRecovery, TornWalTailIsDroppedAndLogUnwedged) {
  LsmOptions o;
  o.memtable_entries = 1024;
  o.dir = FreshDir("torn_wal");
  {
    auto db = LsmTree::Open(o);
    ASSERT_NE(db, nullptr);
    for (uint64_t k = 1; k <= 50; ++k) ASSERT_TRUE(db->Put(k, ValueOf(k)));
  }
  // Simulate a torn append: half of a record's frame at the tail.
  const std::string wal = o.dir + "/" + std::string(kWalFileName);
  std::string bytes;
  ASSERT_TRUE(fault::ReadFileBytes(wal, &bytes));
  const std::string frame = EncodeWalRecord(Entry{999, 1, false});
  ASSERT_TRUE(fault::WriteFileBytes(
      wal, bytes + frame.substr(0, frame.size() / 2)));
  {
    auto db = LsmTree::Open(o);
    ASSERT_NE(db, nullptr);
    EXPECT_EQ(db->recovery().wal_records_replayed, 50u);
    EXPECT_EQ(db->Get(999), std::nullopt);  // Torn op was never acked.
    // The log must be unwedged: new acked ops survive the next reopen.
    ASSERT_TRUE(db->Put(1000, ValueOf(1000)));
  }
  auto db = LsmTree::Open(o);
  ASSERT_NE(db, nullptr);
  EXPECT_EQ(db->Get(1000), std::optional<uint64_t>(ValueOf(1000)));
  for (uint64_t k = 1; k <= 50; ++k) {
    ASSERT_EQ(db->Get(k), std::optional<uint64_t>(ValueOf(k))) << k;
  }
  std::filesystem::remove_all(o.dir);
}

// --- The crash-point fault sweep ---------------------------------------------

struct SweepConfig {
  const char* name;
  bool tiering;
  FilterAllocation allocation;
  MemtableFilterKind memtable_filter;
  PointFilterKind point_filter;
  RangeFilterKind range_filter;
};

class LsmCrashSweep : public ::testing::TestWithParam<SweepConfig> {};

/// Runs the workload against `db`, maintaining the acked reference model:
/// an op is applied to `ref` only when the tree acked it (WAL append
/// durable). Stops at the first crash. Returns the number of ops issued.
uint64_t RunWorkload(LsmTree* db, CrashEnv* env, uint64_t seed, int ops,
                     uint64_t domain,
                     std::map<uint64_t, uint64_t>* ref) {
  SplitMix64 rng(seed);
  uint64_t issued = 0;
  for (int i = 0; i < ops; ++i) {
    const uint64_t key = rng.NextBelow(domain);
    const bool del = rng.NextDouble() < 0.2;
    ++issued;
    if (del) {
      if (db->Delete(key)) ref->erase(key);
    } else {
      const uint64_t value = rng.Next();
      if (db->Put(key, value)) (*ref)[key] = value;
    }
    if (env->crashed()) break;
  }
  return issued;
}

TEST_P(LsmCrashSweep, EveryCrashPointRecoversOldOrNewWithAllAckedKeys) {
  const SweepConfig& cfg = GetParam();
  const uint64_t seed = TestSeed(0xC4A5);
  BBF_ANNOUNCE_SEED(seed);
  constexpr int kOps = 320;
  constexpr uint64_t kDomain = 240;

  LsmOptions o;
  o.memtable_entries = 48;
  o.size_ratio = 3;
  o.tiering = cfg.tiering;
  o.allocation = cfg.allocation;
  o.memtable_filter = cfg.memtable_filter;
  o.point_filter = cfg.point_filter;
  o.range_filter = cfg.range_filter;

  CrashEnv env;

  // Pass 1 (healthy): learn the mutation schedule so the sweep can hit
  // every persistence op and a sample of WAL appends. Disarm AFTER Open
  // so the recorded indices line up with the armed runs, where Arm
  // resets the mutation counter post-Open.
  o.dir = FreshDir(std::string("sweep_probe_") + cfg.name);
  {
    env.Disarm();
    auto db = LsmTree::Open(o, &env);
    ASSERT_NE(db, nullptr);
    env.Disarm();
    std::map<uint64_t, uint64_t> ref;
    RunWorkload(db.get(), &env, seed, kOps, kDomain, &ref);
  }
  std::filesystem::remove_all(o.dir);
  const std::vector<char> schedule = env.ops();
  ASSERT_GT(schedule.size(), 0u);

  std::vector<uint64_t> crash_points;
  for (uint64_t i = 0; i < schedule.size(); ++i) {
    // Every non-append mutation (the whole commit protocol: staging
    // writes, renames, GC removes) plus every 29th WAL append.
    if (schedule[i] != 'a' || i % 29 == 0) crash_points.push_back(i);
  }
  // The schedule shifts once a crash aborts a persist, so also probe past
  // the healthy count a little.
  crash_points.push_back(schedule.size() + 3);

  for (const bool torn : {false, true}) {
    for (const uint64_t crash_at : crash_points) {
      SCOPED_TRACE(::testing::Message()
                   << cfg.name << " crash_at=" << crash_at
                   << " torn=" << torn);
      o.dir = FreshDir(std::string("sweep_") + cfg.name);
      std::map<uint64_t, uint64_t> ref;
      {
        env.Disarm();
        auto db = LsmTree::Open(o, &env);
        ASSERT_NE(db, nullptr);
        env.Arm(crash_at, torn);
        RunWorkload(db.get(), &env, seed, kOps, kDomain, &ref);
      }  // "Process death": the tree object is destroyed mid-flight.
      env.Disarm();
      auto db = LsmTree::Open(o, &env);
      ASSERT_NE(db, nullptr) << "recovery must not fail after a crash";
      // Zero lost acked keys, zero resurrected or corrupted values: the
      // recovered tree answers exactly per the acked reference model.
      for (uint64_t k = 0; k < kDomain; ++k) {
        const auto it = ref.find(k);
        const auto got = db->Get(k);
        if (it == ref.end()) {
          ASSERT_EQ(got, std::nullopt) << "key " << k;
        } else {
          ASSERT_EQ(got, std::optional<uint64_t>(it->second)) << "key " << k;
        }
      }
      // The recovered tree must remain fully writable and durable.
      ASSERT_TRUE(db->Put(kDomain + 1, 42));
      EXPECT_EQ(db->Get(kDomain + 1), std::optional<uint64_t>(42));
      std::filesystem::remove_all(o.dir);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Configs, LsmCrashSweep,
    ::testing::Values(
        SweepConfig{"leveling_uniform_taffy", false, FilterAllocation::kUniform,
                    MemtableFilterKind::kTaffy, PointFilterKind::kBloom,
                    RangeFilterKind::kPrefixBloom},
        SweepConfig{"leveling_monkey_ring", false, FilterAllocation::kMonkey,
                    MemtableFilterKind::kRing, PointFilterKind::kCuckoo,
                    RangeFilterKind::kNone},
        SweepConfig{"tiering_uniform_taffy", true, FilterAllocation::kUniform,
                    MemtableFilterKind::kTaffy, PointFilterKind::kXor,
                    RangeFilterKind::kGrafite},
        SweepConfig{"tiering_monkey_nomem", true, FilterAllocation::kMonkey,
                    MemtableFilterKind::kNone, PointFilterKind::kQuotient,
                    RangeFilterKind::kNone}),
    [](const ::testing::TestParamInfo<SweepConfig>& info) {
      return info.param.name;
    });

// --- At-rest corruption: quarantine and fallback -----------------------------

class LsmPointQuarantine : public ::testing::TestWithParam<PointFilterKind> {};

TEST_P(LsmPointQuarantine, CorruptPointFilterServedFilterlessThenRebuilt) {
  const uint64_t seed = TestSeed(0xB10C);
  BBF_ANNOUNCE_SEED(seed);
  LsmOptions o;
  o.memtable_entries = 128;
  o.point_filter = GetParam();
  o.dir = FreshDir("pq");
  std::vector<uint64_t> keys;
  {
    auto db = LsmTree::Open(o);
    ASSERT_NE(db, nullptr);
    keys = Populate(db.get(), 1500, seed);
  }
  const auto pf_files = FilesMatching(o.dir, ".pf");
  ASSERT_FALSE(pf_files.empty());
  for (size_t i = 0; i < pf_files.size(); ++i) {
    CorruptFile(pf_files[i], seed + i);
  }
  auto db = LsmTree::Open(o);
  ASSERT_NE(db, nullptr);
  EXPECT_GT(db->recovery().filters_quarantined, 0u);
  EXPECT_GT(db->QuarantinedRuns(), 0u);
  // Degraded mode: every answer still correct, extra I/O charged.
  for (uint64_t k : keys) {
    ASSERT_EQ(db->Get(k), std::optional<uint64_t>(ValueOf(k))) << k;
  }
  EXPECT_GT(db->io().quarantined_reads, 0u);
  // The next flush rebuilds every quarantined filter from its run's keys
  // and persists the rebuilt snapshot.
  Populate(db.get(), static_cast<int>(o.memtable_entries), seed + 99);
  EXPECT_EQ(db->QuarantinedRuns(), 0u);
  EXPECT_GT(db->recovery().filters_rebuilt, 0u);
  auto db2 = LsmTree::Open(o);
  ASSERT_NE(db2, nullptr);
  EXPECT_EQ(db2->recovery().filters_quarantined, 0u);
  std::filesystem::remove_all(o.dir);
}

INSTANTIATE_TEST_SUITE_P(
    Kinds, LsmPointQuarantine,
    ::testing::Values(PointFilterKind::kBloom, PointFilterKind::kBlockedBloom,
                      PointFilterKind::kXor, PointFilterKind::kRibbon,
                      PointFilterKind::kCuckoo, PointFilterKind::kQuotient),
    [](const ::testing::TestParamInfo<PointFilterKind>& info) {
      switch (info.param) {
        case PointFilterKind::kNone: return "None";
        case PointFilterKind::kBloom: return "Bloom";
        case PointFilterKind::kBlockedBloom: return "BlockedBloom";
        case PointFilterKind::kXor: return "Xor";
        case PointFilterKind::kRibbon: return "Ribbon";
        case PointFilterKind::kCuckoo: return "Cuckoo";
        case PointFilterKind::kQuotient: return "Quotient";
      }
      return "Unknown";
    });

class LsmRangeRecovery : public ::testing::TestWithParam<RangeFilterKind> {};

TEST_P(LsmRangeRecovery, RangeFiltersRecoverOrRebuildAndScansStayCorrect) {
  const uint64_t seed = TestSeed(0x4A11);
  BBF_ANNOUNCE_SEED(seed);
  LsmOptions o;
  o.memtable_entries = 128;
  o.range_filter = GetParam();
  o.dir = FreshDir("rq");
  std::vector<uint64_t> keys;
  {
    auto db = LsmTree::Open(o);
    ASSERT_NE(db, nullptr);
    keys = Populate(db.get(), 1500, seed);
  }
  // Prefix-bloom and memento snapshots persist: corrupt them to force
  // quarantine. Every other family has no snapshot payload — recovery
  // must come up filterless and rebuild at the next flush either way.
  const auto rf_files = FilesMatching(o.dir, ".rf");
  if (GetParam() == RangeFilterKind::kPrefixBloom ||
      GetParam() == RangeFilterKind::kMemento) {
    ASSERT_FALSE(rf_files.empty());
    for (size_t i = 0; i < rf_files.size(); ++i) {
      CorruptFile(rf_files[i], seed + i);
    }
  } else {
    EXPECT_TRUE(rf_files.empty());
  }
  auto db = LsmTree::Open(o);
  ASSERT_NE(db, nullptr);
  // Scans stay correct while degraded.
  std::map<uint64_t, uint64_t> ref;
  for (uint64_t k : keys) ref[k] = ValueOf(k);
  SplitMix64 rng(seed + 1);
  for (int q = 0; q < 50; ++q) {
    const uint64_t lo = rng.NextBelow(uint64_t{1} << 40);
    const uint64_t hi = lo + rng.NextBelow(uint64_t{1} << 30);
    const auto got = db->Scan(lo, hi);
    std::vector<std::pair<uint64_t, uint64_t>> expect;
    for (auto it = ref.lower_bound(lo); it != ref.end() && it->first <= hi;
         ++it) {
      expect.emplace_back(it->first, it->second);
    }
    ASSERT_EQ(got, expect);
  }
  // One flush later every run has a live range filter again.
  Populate(db.get(), static_cast<int>(o.memtable_entries), seed + 2);
  EXPECT_EQ(db->QuarantinedRuns(), 0u);
  EXPECT_GT(db->recovery().filters_rebuilt, 0u);
  std::filesystem::remove_all(o.dir);
}

INSTANTIATE_TEST_SUITE_P(
    Kinds, LsmRangeRecovery,
    ::testing::Values(RangeFilterKind::kPrefixBloom, RangeFilterKind::kSurf,
                      RangeFilterKind::kRosetta, RangeFilterKind::kSnarf,
                      RangeFilterKind::kGrafite, RangeFilterKind::kMemento),
    [](const ::testing::TestParamInfo<RangeFilterKind>& info) {
      switch (info.param) {
        case RangeFilterKind::kNone: return "None";
        case RangeFilterKind::kPrefixBloom: return "PrefixBloom";
        case RangeFilterKind::kSurf: return "Surf";
        case RangeFilterKind::kRosetta: return "Rosetta";
        case RangeFilterKind::kSnarf: return "Snarf";
        case RangeFilterKind::kGrafite: return "Grafite";
        case RangeFilterKind::kMemento: return "Memento";
      }
      return "Unknown";
    });

TEST(LsmRecovery, CorruptCurrentFallsBackToManifestListing) {
  const uint64_t seed = TestSeed(0xC0DE);
  BBF_ANNOUNCE_SEED(seed);
  LsmOptions o;
  o.memtable_entries = 128;
  o.dir = FreshDir("current");
  std::vector<uint64_t> keys;
  {
    auto db = LsmTree::Open(o);
    ASSERT_NE(db, nullptr);
    keys = Populate(db.get(), 1000, seed);
  }
  CorruptFile(o.dir + "/" + std::string(kCurrentFileName), seed);
  auto db = LsmTree::Open(o);
  ASSERT_NE(db, nullptr);
  EXPECT_GE(db->recovery().manifest_fallbacks, 1u);
  // The newest manifest is still on disk, so nothing is lost.
  for (uint64_t k : keys) {
    ASSERT_EQ(db->Get(k), std::optional<uint64_t>(ValueOf(k))) << k;
  }
  std::filesystem::remove_all(o.dir);
}

TEST(LsmRecovery, CorruptNewestManifestFallsBackWithoutWrongAnswers) {
  const uint64_t seed = TestSeed(0x3A17);
  BBF_ANNOUNCE_SEED(seed);
  LsmOptions o;
  o.memtable_entries = 128;
  o.dir = FreshDir("manifest");
  std::vector<uint64_t> keys;
  uint64_t newest_gen = 0;
  {
    auto db = LsmTree::Open(o);
    ASSERT_NE(db, nullptr);
    keys = Populate(db.get(), 1200, seed);
    newest_gen = db->generation();
  }
  ASSERT_GT(newest_gen, 1u);  // Need a previous generation to fall to.
  CorruptFile(o.dir + "/" + ManifestFileName(newest_gen), seed);
  auto db = LsmTree::Open(o);
  ASSERT_NE(db, nullptr);
  EXPECT_GE(db->recovery().manifest_fallbacks, 1u);
  EXPECT_LT(db->generation(), newest_gen);
  // Falling back may lose the newest generation (an at-rest corruption,
  // not a crash), but it must NEVER invent or corrupt a value: keys are
  // insert-only with value = f(key), so every answer is f(key) or absent.
  size_t present = 0;
  for (uint64_t k : keys) {
    const auto got = db->Get(k);
    if (got.has_value()) {
      ASSERT_EQ(*got, ValueOf(k)) << k;
      ++present;
    }
  }
  EXPECT_GT(present, 0u);
  std::filesystem::remove_all(o.dir);
}

TEST(LsmRecovery, CorruptRunDataFallsBackOrFailsCleanly) {
  const uint64_t seed = TestSeed(0x2DA7);
  BBF_ANNOUNCE_SEED(seed);
  LsmOptions o;
  o.memtable_entries = 128;
  o.dir = FreshDir("rundata");
  std::vector<uint64_t> keys;
  {
    auto db = LsmTree::Open(o);
    ASSERT_NE(db, nullptr);
    keys = Populate(db.get(), 1200, seed);
  }
  const auto data_files = FilesMatching(o.dir, ".data");
  ASSERT_FALSE(data_files.empty());
  for (size_t i = 0; i < data_files.size(); ++i) {
    CorruptFile(data_files[i], seed + i);
  }
  // Every run of every retained generation is now corrupt: recovery must
  // fail cleanly (nullptr), not serve garbage.
  auto db = LsmTree::Open(o);
  if (db != nullptr) {
    // Only acceptable if some generation's runs happened to survive the
    // bit flips' checksums — then answers must still be right-or-absent.
    for (uint64_t k : keys) {
      const auto got = db->Get(k);
      if (got.has_value()) {
        ASSERT_EQ(*got, ValueOf(k)) << k;
      }
    }
  }
  std::filesystem::remove_all(o.dir);
}

TEST(LsmRecovery, AllManifestsCorruptFailsCleanly) {
  const uint64_t seed = TestSeed(0xFA11);
  BBF_ANNOUNCE_SEED(seed);
  LsmOptions o;
  o.memtable_entries = 128;
  o.dir = FreshDir("allmanifests");
  {
    auto db = LsmTree::Open(o);
    ASSERT_NE(db, nullptr);
    Populate(db.get(), 1000, seed);
  }
  size_t corrupted = 0;
  for (const std::string& name : RealEnv()->ListDir(o.dir)) {
    uint64_t gen;
    if (ParseManifestFileName(name, &gen)) {
      CorruptFile(o.dir + "/" + name, seed + corrupted++);
    }
  }
  ASSERT_GT(corrupted, 0u);
  EXPECT_EQ(LsmTree::Open(o), nullptr);
  std::filesystem::remove_all(o.dir);
}

// --- Manifest codec hardening ------------------------------------------------

TEST(LsmManifest, DecodeRejectsCorruptionBattery) {
  const uint64_t seed = TestSeed(0xDECD);
  BBF_ANNOUNCE_SEED(seed);
  ManifestData m;
  m.generation = 7;
  m.next_run_id = 12;
  m.levels.resize(2);
  m.levels[0].runs.push_back(RunManifest{5, 100, true, false});
  m.levels[1].runs.push_back(RunManifest{9, 400, true, true});
  const std::string payload = EncodeManifest(m);
  ManifestData round;
  ASSERT_TRUE(DecodeManifest(payload, &round));
  EXPECT_EQ(round.generation, 7u);
  EXPECT_EQ(round.levels[1].runs[0].id, 9u);
  EXPECT_TRUE(round.levels[1].runs[0].has_range_filter);

  // The payload itself is covered by the frame checksum in the file; the
  // decoder must still reject structural damage on its own (it also runs
  // on intact-but-foreign payloads).
  int rejected = 0;
  for (const auto& c : fault::GenericCorruptions(payload, seed)) {
    ManifestData out;
    if (!DecodeManifest(c.blob, &out)) ++rejected;
  }
  // Bit flips inside a value field can legitimately decode (the frame
  // checksum catches those); truncations and hostile counts must not.
  ManifestData out;
  EXPECT_FALSE(DecodeManifest(payload.substr(0, payload.size() - 3), &out));
  EXPECT_FALSE(DecodeManifest(payload + "x", &out));
  EXPECT_GT(rejected, 0);
}

// --- Observability -----------------------------------------------------------

TEST(LsmRecovery, LifecycleCountersAreScrapeable) {
  const uint64_t seed = TestSeed(0x0B5);
  BBF_ANNOUNCE_SEED(seed);
  LsmOptions o;
  o.memtable_entries = 128;
  o.dir = FreshDir("obs");
  {
    auto db = LsmTree::Open(o);
    ASSERT_NE(db, nullptr);
    Populate(db.get(), 1000, seed);
  }
  const auto pf_files = FilesMatching(o.dir, ".pf");
  ASSERT_FALSE(pf_files.empty());
  CorruptFile(pf_files[0], seed);
  auto db = LsmTree::Open(o);
  ASSERT_NE(db, nullptr);
  obs::MetricsRegistry registry;
  registry.Register("lsm", [&db] { return db->ObsSnapshot(); });
  const std::string prom = obs::RenderPrometheus(registry.Snapshot());
  EXPECT_NE(prom.find("bbf_lsm_filters_quarantined_total"), std::string::npos);
  EXPECT_NE(prom.find("bbf_lsm_generations_committed_total"),
            std::string::npos);
  EXPECT_NE(prom.find("bbf_lsm_quarantined_runs"), std::string::npos);
  const std::string json = obs::RenderJson(registry.Snapshot());
  EXPECT_NE(json.find("lsm_filters_quarantined_total"), std::string::npos);
  std::filesystem::remove_all(o.dir);
}

}  // namespace
}  // namespace bbf::lsm
