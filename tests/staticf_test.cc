// Tests for static/algebraic filters: XOR, Bloomier, Ribbon.

#include <cstdint>
#include <unordered_map>
#include <vector>

#include <gtest/gtest.h>

#include "staticf/bloomier_filter.h"
#include "staticf/ribbon_filter.h"
#include "staticf/xor_filter.h"
#include "util/random.h"
#include "workload/generators.h"

namespace bbf {
namespace {

class StaticFilterSizes : public ::testing::TestWithParam<uint64_t> {};

TEST_P(StaticFilterSizes, XorNoFalseNegatives) {
  const auto keys = GenerateDistinctKeys(GetParam());
  XorFilter f(keys, 12);
  EXPECT_EQ(f.NumKeys(), keys.size());
  for (uint64_t k : keys) ASSERT_TRUE(f.Contains(k));
}

TEST_P(StaticFilterSizes, RibbonNoFalseNegatives) {
  const auto keys = GenerateDistinctKeys(GetParam());
  RibbonFilter f(keys, 12);
  for (uint64_t k : keys) ASSERT_TRUE(f.Contains(k));
}

INSTANTIATE_TEST_SUITE_P(Sizes, StaticFilterSizes,
                         ::testing::Values(1, 10, 1000, 100000));

TEST(XorFilter, FprNearTwoToMinusR) {
  const auto keys = GenerateDistinctKeys(50000);
  XorFilter f(keys, 10);
  const auto negatives = GenerateNegativeKeys(keys, 200000);
  uint64_t fp = 0;
  for (uint64_t k : negatives) fp += f.Contains(k);
  const double fpr = static_cast<double>(fp) / negatives.size();
  EXPECT_NEAR(fpr, 1.0 / 1024, 0.0012);
}

TEST(XorFilter, SpaceIsOnePointTwoThreeNTimesR) {
  const auto keys = GenerateDistinctKeys(100000);
  XorFilter f(keys, 10);
  const double bits_per_key =
      static_cast<double>(f.SpaceBits()) / keys.size();
  EXPECT_NEAR(bits_per_key, 12.3, 0.2);  // 1.23 * 10.
}

TEST(XorFilter, DuplicateKeysTolerated) {
  std::vector<uint64_t> keys = {1, 2, 3, 2, 1, 1};
  XorFilter f(keys, 12);
  EXPECT_EQ(f.NumKeys(), 3u);
  EXPECT_TRUE(f.Contains(1));
  EXPECT_TRUE(f.Contains(2));
  EXPECT_TRUE(f.Contains(3));
}

TEST(XorFilter, InsertRefusedAfterBuild) {
  XorFilter f(GenerateDistinctKeys(100), 8);
  EXPECT_FALSE(f.Insert(999));
  EXPECT_EQ(f.Class(), FilterClass::kStatic);
}

TEST(RibbonFilter, FprNearTwoToMinusR) {
  const auto keys = GenerateDistinctKeys(50000);
  RibbonFilter f(keys, 10);
  const auto negatives = GenerateNegativeKeys(keys, 200000);
  uint64_t fp = 0;
  for (uint64_t k : negatives) fp += f.Contains(k);
  const double fpr = static_cast<double>(fp) / negatives.size();
  EXPECT_NEAR(fpr, 1.0 / 1024, 0.0012);
}

TEST(RibbonFilter, SpaceBeatsXorFactor) {
  const auto keys = GenerateDistinctKeys(100000);
  RibbonFilter ribbon(keys, 10);
  XorFilter xorf(keys, 10);
  const double ribbon_bpk =
      static_cast<double>(ribbon.SpaceBits()) / keys.size();
  const double xor_bpk = static_cast<double>(xorf.SpaceBits()) / keys.size();
  // ~1.05-1.15 * 10 + overhang: comfortably below the XOR filter's 12.3.
  EXPECT_LT(ribbon_bpk, 11.6);
  EXPECT_LT(ribbon_bpk, xor_bpk);
}

TEST(RibbonFilter, BuildsInFewAttempts) {
  const auto keys = GenerateDistinctKeys(20000);
  RibbonFilter f(keys, 8);
  EXPECT_LE(f.build_attempts(), 3);
}

TEST(BloomierFilter, ExactValuesForMembers) {
  SplitMix64 rng(8);
  std::vector<std::pair<uint64_t, uint64_t>> entries;
  const auto keys = GenerateDistinctKeys(20000);
  std::unordered_map<uint64_t, uint64_t> truth;
  for (uint64_t k : keys) {
    const uint64_t v = rng.NextBelow(256);
    entries.emplace_back(k, v);
    truth[k] = v;
  }
  BloomierFilter f(entries, 8);
  for (const auto& [k, v] : truth) {
    ASSERT_EQ(f.Get(k), v) << "PRS must be exactly 1 for members";
  }
}

TEST(BloomierFilter, UpdateChangesOnlyTargetKey) {
  std::vector<std::pair<uint64_t, uint64_t>> entries;
  const auto keys = GenerateDistinctKeys(5000);
  for (uint64_t k : keys) entries.emplace_back(k, k & 0xFF);
  BloomierFilter f(entries, 8);
  // Update every 10th key and verify all keys afterwards.
  for (size_t i = 0; i < keys.size(); i += 10) f.Update(keys[i], 0xAA);
  for (size_t i = 0; i < keys.size(); ++i) {
    const uint64_t expect = (i % 10 == 0) ? 0xAA : (keys[i] & 0xFF);
    ASSERT_EQ(f.Get(keys[i]), expect) << i;
  }
}

TEST(BloomierFilter, SpaceProportionalToValueBits) {
  std::vector<std::pair<uint64_t, uint64_t>> entries;
  for (uint64_t k : GenerateDistinctKeys(10000)) entries.emplace_back(k, 1);
  BloomierFilter f(entries, 8);
  const double bits_per_key = static_cast<double>(f.SpaceBits()) / 10000;
  EXPECT_NEAR(bits_per_key, 1.23 * 10, 0.5);  // (8 value + 2 tau) * 1.23.
}

}  // namespace
}  // namespace bbf
