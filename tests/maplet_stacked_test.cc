// Tests for the unified maplet API with PRS/NRS accounting (§2.4 / E8)
// and the stacked filter (§2.8 / E12).

#include <algorithm>
#include <cstdint>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "maplet/maplet.h"
#include "stacked/stacked_filter.h"
#include "util/random.h"
#include "workload/generators.h"

namespace bbf {
namespace {

std::vector<std::pair<uint64_t, uint64_t>> MakeEntries(
    const std::vector<uint64_t>& keys, uint64_t seed = 4) {
  SplitMix64 rng(seed);
  std::vector<std::pair<uint64_t, uint64_t>> entries;
  entries.reserve(keys.size());
  for (uint64_t k : keys) entries.emplace_back(k, rng.NextBelow(256));
  return entries;
}

TEST(Maplet, DynamicMapletsHavePrsOnePlusEpsAndNrsEps) {
  const auto keys = GenerateDistinctKeys(20000);
  const auto absent = GenerateNegativeKeys(keys, 20000);
  const auto entries = MakeEntries(keys);

  for (auto& maplet :
       {MakeQuotientMaplet(20000, 0.01, 8), MakeCuckooMaplet(20000, 12, 8)}) {
    for (const auto& [k, v] : entries) ASSERT_TRUE(maplet->Insert(k, v));
    const ResultSizes sizes = MeasureResultSizes(*maplet, keys, absent);
    EXPECT_GT(sizes.prs, 0.999) << maplet->Name();
    EXPECT_LT(sizes.prs, 1.05) << maplet->Name();   // 1 + eps.
    EXPECT_LT(sizes.nrs, 0.05) << maplet->Name();   // eps.
    EXPECT_GT(sizes.prs, sizes.nrs) << maplet->Name();
  }
}

TEST(Maplet, BloomierHasPrsAndNrsExactlyOne) {
  const auto keys = GenerateDistinctKeys(10000);
  const auto absent = GenerateNegativeKeys(keys, 10000);
  const auto entries = MakeEntries(keys);
  const auto maplet = MakeBloomierMaplet(entries, 8);
  const ResultSizes sizes = MeasureResultSizes(*maplet, keys, absent);
  EXPECT_DOUBLE_EQ(sizes.prs, 1.0);
  EXPECT_DOUBLE_EQ(sizes.nrs, 1.0);
  // And the single returned value is exact for members.
  for (const auto& [k, v] : entries) {
    ASSERT_EQ(maplet->Lookup(k)[0], v);
  }
  EXPECT_FALSE(maplet->Insert(1, 1));  // Static: no new keys.
}

TEST(Maplet, TrueValueAlwaysPresentInLookup) {
  const auto keys = GenerateDistinctKeys(5000);
  const auto entries = MakeEntries(keys);
  for (auto& maplet :
       {MakeQuotientMaplet(5000, 0.01, 8), MakeCuckooMaplet(5000, 12, 8)}) {
    for (const auto& [k, v] : entries) ASSERT_TRUE(maplet->Insert(k, v));
    for (const auto& [k, v] : entries) {
      const auto vals = maplet->Lookup(k);
      ASSERT_NE(std::find(vals.begin(), vals.end(), v), vals.end())
          << maplet->Name();
    }
  }
}

TEST(StackedFilter, HotNegativesGetExponentiallyFewerFps) {
  const auto positives = GenerateDistinctKeys(50000, 1);
  auto universe = GenerateNegativeKeys(positives, 60000, 2);
  const std::vector<uint64_t> hot(universe.begin(), universe.begin() + 10000);
  const std::vector<uint64_t> cold(universe.begin() + 10000, universe.end());

  BloomFilter plain(positives.size(), 10.0);
  for (uint64_t k : positives) plain.Insert(k);
  StackedFilter stacked(positives, hot, 10.0, 3);

  auto fpr = [](auto& f, const std::vector<uint64_t>& qs) {
    uint64_t fp = 0;
    for (uint64_t k : qs) fp += f.Contains(k);
    return static_cast<double>(fp) / qs.size();
  };
  const double plain_hot = fpr(plain, hot);
  const double stacked_hot = fpr(stacked, hot);
  const double stacked_cold = fpr(stacked, cold);
  // Hot negatives: the stack multiplies Bloom factors together.
  EXPECT_LT(stacked_hot * 20, plain_hot + 0.001);
  // Cold negatives keep roughly the single-filter rate.
  EXPECT_LT(stacked_cold, 0.05);
}

TEST(StackedFilter, NoFalseNegatives) {
  const auto positives = GenerateDistinctKeys(20000, 1);
  const auto hot = GenerateNegativeKeys(positives, 5000, 2);
  StackedFilter f(positives, hot, 12.0, 3);
  for (uint64_t k : positives) ASSERT_TRUE(f.Contains(k));
}

TEST(StackedFilter, SingleLayerDegeneratesToBloom) {
  const auto positives = GenerateDistinctKeys(1000, 1);
  StackedFilter f(positives, {}, 10.0, 1);
  EXPECT_EQ(f.num_layers(), 1u);
  for (uint64_t k : positives) ASSERT_TRUE(f.Contains(k));
}

}  // namespace
}  // namespace bbf
