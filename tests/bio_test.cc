// Tests for the computational-biology substrate (§3.2 / E13): k-mer
// packing, Squeakr-style counting, and the three de Bruijn representations.

#include <cstdint>
#include <string>
#include <unordered_map>
#include <unordered_set>

#include <gtest/gtest.h>

#include "apps/bio/debruijn.h"
#include "apps/bio/kmer.h"
#include "apps/bio/kmer_counter.h"
#include "workload/generators.h"

namespace bbf::bio {
namespace {

TEST(Kmer, EncodeDecodeRoundTrip) {
  const std::string s = "ACGTACGTTGCA";
  const auto packed = EncodeKmer(s);
  ASSERT_TRUE(packed.has_value());
  EXPECT_EQ(DecodeKmer(*packed, s.size()), s);
}

TEST(Kmer, EncodeRejectsNonAcgt) {
  EXPECT_FALSE(EncodeKmer("ACGN").has_value());
}

TEST(Kmer, ReverseComplement) {
  const auto packed = EncodeKmer("ACGT");
  // ACGT is its own reverse complement.
  EXPECT_EQ(ReverseComplement(*packed, 4), *packed);
  const auto aaaa = EncodeKmer("AAAA");
  const auto tttt = EncodeKmer("TTTT");
  EXPECT_EQ(ReverseComplement(*aaaa, 4), *tttt);
}

TEST(Kmer, CanonicalIsStrandIndependent) {
  const auto fwd = EncodeKmer("ACCGTAG");
  const auto rc = ReverseComplement(*fwd, 7);
  EXPECT_EQ(Canonical(*fwd, 7), Canonical(rc, 7));
}

TEST(Kmer, ExtractSkipsInvalidWindows) {
  const auto kmers = ExtractKmers("ACGTNACGT", 4, false);
  EXPECT_EQ(kmers.size(), 2u);  // One window per clean side of the N.
}

TEST(Kmer, ExtractCountMatchesLength) {
  const std::string dna = GenerateDna(10000, 0.0, 1);
  const auto kmers = ExtractKmers(dna, 31);
  EXPECT_EQ(kmers.size(), dna.size() - 30);
}

TEST(KmerCounter, CountsMatchExactDictionary) {
  const std::string dna = GenerateDna(200000, 0.3, 2);
  const int k = 21;
  KmerCounter counter(k, 300000);
  counter.AddSequence(dna);
  std::unordered_map<uint64_t, uint64_t> truth;
  for (uint64_t km : ExtractKmers(dna, k)) ++truth[km];
  uint64_t exact = 0;
  for (const auto& [km, c] : truth) {
    ASSERT_GE(counter.CountPacked(km), c) << "CQF may only overcount";
    exact += counter.CountPacked(km) == c;
  }
  EXPECT_GT(static_cast<double>(exact) / truth.size(), 0.98);
}

TEST(KmerCounter, StringQueryCanonicalizes) {
  KmerCounter counter(5, 1000);
  counter.AddSequence("AACGTT");
  // AACGT and its reverse complement ACGTT are the same canonical k-mer.
  EXPECT_EQ(counter.Count("AACGT"), counter.Count("ACGTT"));
  EXPECT_GE(counter.Count("AACGT"), 1u);
}

TEST(KmerCounter, RepeatRichSequenceSkewsCounts) {
  const std::string dna = GenerateDna(200000, 0.5, 3);
  const int k = 21;
  KmerCounter counter(k, 300000);
  counter.AddSequence(dna);
  std::unordered_map<uint64_t, uint64_t> truth;
  for (uint64_t km : ExtractKmers(dna, k)) ++truth[km];
  uint64_t max_count = 0;
  for (const auto& [km, c] : truth) max_count = std::max(max_count, c);
  EXPECT_GT(max_count, 3u);  // Repeats create multiplicity.
}

class DeBruijnModes : public ::testing::TestWithParam<DeBruijnGraph::Mode> {};

TEST_P(DeBruijnModes, TrueNodesAlwaysPresent) {
  const std::string dna = GenerateDna(50000, 0.2, 4);
  const int k = 21;
  const auto kmers = ExtractKmers(dna, k);
  DeBruijnGraph g(kmers, k, GetParam(), 10.0);
  for (uint64_t km : kmers) {
    ASSERT_TRUE(g.HasNode(km));
  }
}

INSTANTIATE_TEST_SUITE_P(
    Modes, DeBruijnModes,
    ::testing::Values(DeBruijnGraph::Mode::kProbabilistic,
                      DeBruijnGraph::Mode::kExactTable,
                      DeBruijnGraph::Mode::kCascading),
    [](const ::testing::TestParamInfo<DeBruijnGraph::Mode>& info) {
      switch (info.param) {
        case DeBruijnGraph::Mode::kProbabilistic: return "Probabilistic";
        case DeBruijnGraph::Mode::kExactTable: return "ExactTable";
        case DeBruijnGraph::Mode::kCascading: return "Cascading";
      }
      return "Unknown";
    });

TEST(DeBruijn, ExactModesNavigateWithoutFalseEdges) {
  const std::string dna = GenerateDna(100000, 0.2, 5);
  const int k = 21;
  const auto kmers = ExtractKmers(dna, k);
  const std::unordered_set<uint64_t> truth(kmers.begin(), kmers.end());
  DeBruijnGraph exact(kmers, k, DeBruijnGraph::Mode::kExactTable, 10.0);
  DeBruijnGraph cascade(kmers, k, DeBruijnGraph::Mode::kCascading, 10.0);
  // From every true node, every reported neighbour must be a true k-mer.
  size_t checked = 0;
  for (uint64_t km : truth) {
    for (const auto* g : {&exact, &cascade}) {
      for (uint64_t nb : g->RightNeighbors(km)) {
        ASSERT_TRUE(truth.contains(nb)) << "phantom edge";
      }
      for (uint64_t nb : g->LeftNeighbors(km)) {
        ASSERT_TRUE(truth.contains(nb)) << "phantom edge";
      }
    }
    if (++checked > 3000) break;
  }
}

TEST(DeBruijn, ProbabilisticModeHasPhantomEdgesAtLowBits) {
  const std::string dna = GenerateDna(100000, 0.2, 6);
  const int k = 21;
  const auto kmers = ExtractKmers(dna, k);
  const std::unordered_set<uint64_t> truth(kmers.begin(), kmers.end());
  // 4 bits/key Bloom -> ~15%+ FPR: structure visibly perturbed (Pell).
  DeBruijnGraph g(kmers, k, DeBruijnGraph::Mode::kProbabilistic, 4.0);
  uint64_t phantom = 0;
  uint64_t edges = 0;
  size_t checked = 0;
  for (uint64_t km : truth) {
    for (uint64_t nb : g.RightNeighbors(km)) {
      ++edges;
      phantom += !truth.contains(nb);
    }
    if (++checked > 5000) break;
  }
  EXPECT_GT(phantom, 0u);
  EXPECT_GT(edges, phantom);  // Still mostly real structure.
}

TEST(DeBruijn, CascadingUsesLessSpaceThanExactTable) {
  const std::string dna = GenerateDna(200000, 0.2, 7);
  const int k = 21;
  const auto kmers = ExtractKmers(dna, k);
  // Low bits/key so critical FPs are plentiful and the table matters.
  DeBruijnGraph exact(kmers, k, DeBruijnGraph::Mode::kExactTable, 6.0);
  DeBruijnGraph cascade(kmers, k, DeBruijnGraph::Mode::kCascading, 6.0);
  ASSERT_GT(exact.critical_fp_count(), 100u);
  EXPECT_LT(cascade.SpaceBits(), exact.SpaceBits());
}

}  // namespace
}  // namespace bbf::bio
