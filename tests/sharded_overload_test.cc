// Deterministic (single-threaded) coverage of the overload-graceful
// serving layer: each SaturationPolicy's admission contract, the
// structured InsertWithStatus outcomes, per-shard statistics, the FPR
// budget of generation chaining, and snapshot round-trips of chained
// shards. The concurrent counterpart lives in concurrent_stress_test.cc.

#include <algorithm>
#include <cstdint>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "core/filter_io.h"
#include "core/sharded_filter.h"
#include "cuckoo/cuckoo_filter.h"
#include "quotient/quotient_filter.h"
#include "test_seed.h"
#include "workload/generators.h"

namespace bbf {
namespace {

ShardedFilter::ShardFactory QuotientFactory(double fpr) {
  return [fpr](uint64_t cap) -> std::unique_ptr<Filter> {
    return std::make_unique<QuotientFilter>(
        QuotientFilter::ForCapacity(cap, fpr));
  };
}

TEST(SaturationConfigTest, GenerationsForFprBudget) {
  // 2% total budget at 0.5% per generation affords 4 generations.
  EXPECT_EQ(SaturationConfig::GenerationsForFprBudget(0.005, 0.02), 4);
  EXPECT_EQ(SaturationConfig::GenerationsForFprBudget(0.01, 0.01), 1);
  // A budget below one generation's FPR still allows the mandatory first.
  EXPECT_EQ(SaturationConfig::GenerationsForFprBudget(0.01, 0.001), 1);
  EXPECT_EQ(SaturationConfig::GenerationsForFprBudget(0.0, 0.01), 1);
}

TEST(ShardedOverload, RejectPolicyShedsLoadWithoutCorruption) {
  SaturationConfig config;
  config.policy = SaturationPolicy::kReject;
  config.load_threshold = 0.80;
  ShardedFilter f(400, 4, QuotientFactory(0.01), config);

  const auto keys = GenerateDistinctKeys(4000, TestSeed(500));
  std::vector<uint64_t> acked;
  uint64_t rejected = 0;
  for (uint64_t k : keys) {
    const InsertOutcome outcome = f.InsertWithStatus(k);
    // kReject never chains, so kExpanded is impossible.
    ASSERT_NE(outcome, InsertOutcome::kExpanded);
    if (Accepted(outcome)) {
      acked.push_back(k);
    } else {
      ++rejected;
    }
  }
  ASSERT_GT(rejected, 0u) << "workload must overflow the filter";
  EXPECT_EQ(rejected, f.TotalRejected());
  EXPECT_EQ(f.NumKeys(), acked.size());
  for (uint64_t k : acked) ASSERT_TRUE(f.Contains(k));

  // Every shard stayed single-generation and the hot ones report
  // saturation so callers can see the shedding.
  bool any_saturated = false;
  for (const auto& s : f.Stats()) {
    EXPECT_EQ(s.generations, 1u);
    any_saturated |= s.saturated;
  }
  EXPECT_TRUE(any_saturated);
}

TEST(ShardedOverload, ChainPolicyAcceptsPastCapacityWithinFprBudget) {
  // Build the chain budget from a total FPR target the way a deployment
  // would: 2% total at 0.5% per generation -> at most 4 generations.
  const double kPerGenFpr = 0.005;
  const double kFprBudget = 0.02;
  SaturationConfig config;
  config.policy = SaturationPolicy::kChain;
  config.load_threshold = 0.85;
  config.growth = 2.0;
  config.max_generations =
      SaturationConfig::GenerationsForFprBudget(kPerGenFpr, kFprBudget);
  ASSERT_EQ(config.max_generations, 4);

  ShardedFilter f(2000, 4, QuotientFactory(kPerGenFpr), config);

  // 4x the design capacity: far past generation one.
  const auto keys = GenerateDistinctKeys(8000, TestSeed(501));
  std::vector<uint64_t> acked;
  uint64_t expanded = 0;
  for (uint64_t k : keys) {
    const InsertOutcome outcome = f.InsertWithStatus(k);
    if (Accepted(outcome)) {
      acked.push_back(k);
      expanded += outcome == InsertOutcome::kExpanded;
    }
  }
  // Chaining must carry the filter well past its design point.
  EXPECT_GT(acked.size(), 4000u);
  EXPECT_GT(expanded, 0u);
  EXPECT_EQ(f.NumKeys(), acked.size());
  for (uint64_t k : acked) ASSERT_TRUE(f.Contains(k));

  size_t max_generations_seen = 0;
  for (const auto& s : f.Stats()) {
    max_generations_seen = std::max(max_generations_seen, s.generations);
    EXPECT_LE(s.generations,
              static_cast<size_t>(config.max_generations));
  }
  EXPECT_GT(max_generations_seen, 1u);

  // The additive union bound holds: measured FPR stays inside the budget
  // (3% assertion ceiling gives the 2% bound sampling room).
  const auto negatives = GenerateNegativeKeys(keys, 40000, TestSeed(502));
  uint64_t fp = 0;
  for (uint64_t k : negatives) fp += f.Contains(k);
  EXPECT_LT(static_cast<double>(fp) / negatives.size(), 0.03);
}

TEST(ShardedOverload, ChainPolicyRejectsOnlyAfterGenerationBudget) {
  SaturationConfig config;
  config.policy = SaturationPolicy::kChain;
  config.max_generations = 2;
  ShardedFilter f(200, 2, QuotientFactory(0.01), config);

  const auto keys = GenerateDistinctKeys(20000, TestSeed(503));
  uint64_t rejected = 0;
  for (uint64_t k : keys) {
    rejected += f.InsertWithStatus(k) == InsertOutcome::kRejectedFull;
  }
  ASSERT_GT(rejected, 0u);
  for (const auto& s : f.Stats()) {
    EXPECT_LE(s.generations, 2u);
    // Once a shard rejects, it must be reporting saturation.
    if (s.rejected > 0) {
      EXPECT_TRUE(s.saturated);
    }
  }
  EXPECT_EQ(f.TotalRejected(), rejected);
}

TEST(ShardedOverload, ExpandInPlacePolicyDelegatesToNativeGrowth) {
  SaturationConfig config;
  config.policy = SaturationPolicy::kExpandInPlace;
  config.load_threshold = 0.85;
  ShardedFilter f(
      256, 4,
      [](uint64_t cap) -> std::unique_ptr<Filter> {
        return CreateFilterForTag("taffy", cap);
      },
      config);

  const auto keys = GenerateDistinctKeys(10000, TestSeed(504));
  uint64_t accepted = 0;
  uint64_t expanded = 0;
  for (uint64_t k : keys) {
    const InsertOutcome outcome = f.InsertWithStatus(k);
    ASSERT_TRUE(Accepted(outcome)) << "taffy exhausted unexpectedly";
    accepted += outcome == InsertOutcome::kAccepted;
    expanded += outcome == InsertOutcome::kExpanded;
  }
  EXPECT_GT(accepted, 0u);  // Early inserts land below the threshold.
  EXPECT_GT(expanded, 0u);  // Past it, the honest status is kExpanded.
  EXPECT_EQ(f.NumKeys(), keys.size());
  for (uint64_t k : keys) ASSERT_TRUE(f.Contains(k));
  // Shards never chain: growth happens inside the family.
  for (const auto& s : f.Stats()) EXPECT_EQ(s.generations, 1u);
}

TEST(ShardedOverload, StatsExposeHottestShardAndOutcomeCounters) {
  ShardedFilter f(4000, 4, QuotientFactory(0.01));
  const auto keys = GenerateDistinctKeys(3000, TestSeed(505));
  uint64_t acks = 0;
  for (uint64_t k : keys) acks += f.Insert(k);

  const auto stats = f.Stats();
  ASSERT_EQ(stats.size(), 4u);
  uint64_t total = 0;
  uint64_t hottest_keys = 0;
  size_t hottest = 0;
  for (size_t i = 0; i < stats.size(); ++i) {
    total += stats[i].num_keys;
    EXPECT_GE(stats[i].load_factor, 0.0);
    EXPECT_EQ(stats[i].accepted + stats[i].expanded + stats[i].rejected,
              stats[i].num_keys + stats[i].rejected);
    if (stats[i].num_keys > hottest_keys) {
      hottest_keys = stats[i].num_keys;
      hottest = i;
    }
  }
  EXPECT_EQ(total, acks);
  EXPECT_EQ(f.HottestShard(), hottest);
}

TEST(ShardedOverload, BatchInsertMatchesScalarOutcomesPastSaturation) {
  // InsertMany must report the same admission count a scalar twin gets,
  // including through the chaining path (same factory order, same RNG
  // consumption per shard).
  SaturationConfig config;
  config.policy = SaturationPolicy::kChain;
  config.max_generations = 3;
  const auto keys = GenerateDistinctKeys(6000, TestSeed(506));

  ShardedFilter scalar(1000, 4, QuotientFactory(0.01), config);
  size_t scalar_count = 0;
  for (uint64_t k : keys) scalar_count += scalar.Insert(k);

  ShardedFilter batched(1000, 4, QuotientFactory(0.01), config);
  const size_t batched_count = batched.InsertMany(keys);
  EXPECT_EQ(batched_count, scalar_count);
  EXPECT_EQ(batched.NumKeys(), scalar.NumKeys());
  for (uint64_t k : keys) {
    ASSERT_EQ(batched.Contains(k), scalar.Contains(k)) << k;
  }
}

TEST(ShardedOverload, SnapshotRoundTripsChainedGenerations) {
  SaturationConfig config;
  config.policy = SaturationPolicy::kChain;
  config.max_generations = 4;
  ShardedFilter f(500, 4, QuotientFactory(0.01), config);
  const auto keys = GenerateDistinctKeys(3000, TestSeed(507));
  std::vector<uint64_t> acked;
  for (uint64_t k : keys) {
    if (f.Insert(k)) acked.push_back(k);
  }
  size_t generations_before = 0;
  for (const auto& s : f.Stats()) generations_before += s.generations;
  ASSERT_GT(generations_before, 4u) << "setup must chain generations";

  std::stringstream ss;
  ASSERT_TRUE(f.Save(ss));

  ShardedFilter loaded(500, 4, QuotientFactory(0.01), config);
  ShardedFilter::LoadReport report;
  ASSERT_TRUE(loaded.LoadWithReport(ss, &report));
  EXPECT_TRUE(report.AllHealthy());
  EXPECT_EQ(report.total_shards, 4u);
  EXPECT_EQ(loaded.NumKeys(), f.NumKeys());
  size_t generations_after = 0;
  for (const auto& s : loaded.Stats()) generations_after += s.generations;
  EXPECT_EQ(generations_after, generations_before);
  for (uint64_t k : acked) ASSERT_TRUE(loaded.Contains(k));

  // The generic filter_io entry point resolves the inner tag itself.
  std::stringstream ss2;
  ASSERT_TRUE(f.Save(ss2));
  auto generic = LoadFilterSnapshot(ss2);
  ASSERT_NE(generic, nullptr);
  EXPECT_EQ(generic->NumKeys(), f.NumKeys());
}

TEST(ShardedOverload, CorruptGenerationBlobQuarantinesOnlyItsShard) {
  SaturationConfig config;
  config.policy = SaturationPolicy::kChain;
  config.max_generations = 4;
  ShardedFilter f(500, 4, QuotientFactory(0.01), config);
  const auto keys = GenerateDistinctKeys(3000, TestSeed(508));
  for (uint64_t k : keys) f.Insert(k);

  std::stringstream ss;
  ASSERT_TRUE(f.Save(ss));
  std::string bytes = ss.str();
  // Flip a byte deep in the stream: past the directory frame, inside some
  // shard's generation blobs.
  bytes[bytes.size() * 3 / 4] ^= 0x40;

  ShardedFilter loaded(500, 4, QuotientFactory(0.01), config);
  ShardedFilter::LoadReport report;
  std::istringstream broken(bytes);
  ASSERT_TRUE(loaded.LoadWithReport(broken, &report));
  EXPECT_FALSE(report.AllHealthy());
  EXPECT_EQ(report.total_shards, 4u);
  // Exactly the shards owning the flipped byte got rebuilt empty; the
  // rest loaded intact, so the survivor count matches shard-by-shard.
  ASSERT_LT(report.quarantined.size(), 4u);
  EXPECT_EQ(report.healthy_shards + report.quarantined.size(), 4u);
  EXPECT_LT(loaded.NumKeys(), f.NumKeys());
  EXPECT_GT(loaded.NumKeys(), 0u);
}

TEST(ShardedOverload, InsertManyWithStatusMatchesPerKeyPath) {
  // The batched structured insert must be outcome-for-outcome identical
  // to calling InsertWithStatus in order — the serving layer acks keys
  // from these outcomes, so any drift would ack unstored keys.
  const uint64_t seed = TestSeed(512);
  BBF_ANNOUNCE_SEED(seed);
  SaturationConfig config;
  config.policy = SaturationPolicy::kReject;
  config.load_threshold = 0.80;
  const auto raw = GenerateDistinctKeys(4000, seed);
  std::vector<HashedKey> keys;
  keys.reserve(raw.size());
  for (uint64_t k : raw) keys.emplace_back(k);

  ShardedFilter ref(400, 4, QuotientFactory(0.01), config);
  std::vector<InsertOutcome> want;
  want.reserve(keys.size());
  for (const HashedKey& k : keys) want.push_back(ref.InsertWithStatus(k));

  // Batched in chunks (some below, some above the passthrough cutoff).
  ShardedFilter batched(400, 4, QuotientFactory(0.01), config);
  std::vector<InsertOutcome> got(keys.size());
  size_t off = 0;
  for (size_t chunk : {3u, 500u, 1u, 2000u}) {
    const size_t n = std::min(chunk, keys.size() - off);
    batched.InsertManyWithStatus(
        std::span<const HashedKey>(keys.data() + off, n), got.data() + off);
    off += n;
  }
  batched.InsertManyWithStatus(
      std::span<const HashedKey>(keys.data() + off, keys.size() - off),
      got.data() + off);

  ASSERT_EQ(want.size(), got.size());
  for (size_t i = 0; i < want.size(); ++i) {
    ASSERT_EQ(want[i], got[i]) << "outcome diverged at key " << i;
  }
  EXPECT_EQ(batched.NumKeys(), ref.NumKeys());
  for (size_t i = 0; i < keys.size(); ++i) {
    if (Accepted(got[i])) ASSERT_TRUE(batched.Contains(keys[i]));
  }
}

}  // namespace
}  // namespace bbf
