// Metrics-accuracy tests for the observability layer (DESIGN.md §11):
// exact counter values after scripted op sequences, histogram bucket
// math, the observed-FPR estimator against a measured ground truth, and
// byte-validated exporter output.

#include <cmath>
#include <cstdint>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "apps/lsm/lsm_tree.h"
#include "apps/net/server.h"
#include "bloom/bloom_filter.h"
#include "core/sharded_filter.h"
#include "cuckoo/adaptive_cuckoo_filter.h"
#include "cuckoo/cuckoo_filter.h"
#include "expandable/taffy_filter.h"
#include "obs/export.h"
#include "obs/instrumented.h"
#include "obs/metrics.h"
#include "quotient/quotient_filter.h"
#include "test_seed.h"
#include "workload/generators.h"

namespace bbf {
namespace {

using obs::FilterMetrics;
using obs::InstrumentedFilter;
using obs::LatencyReservoir;
using obs::Log2Histogram;
using obs::MetricsRegistry;
using obs::MetricsSnapshot;
using obs::ObservedFprEstimator;

// --- Histogram bucket math --------------------------------------------------

TEST(Log2Histogram, BucketPlacementIsExact) {
  EXPECT_EQ(Log2Histogram::BucketOf(0), 0u);
  EXPECT_EQ(Log2Histogram::BucketOf(1), 1u);
  EXPECT_EQ(Log2Histogram::BucketOf(2), 2u);
  EXPECT_EQ(Log2Histogram::BucketOf(3), 3u);
  EXPECT_EQ(Log2Histogram::BucketOf(4), 3u);
  EXPECT_EQ(Log2Histogram::BucketOf(5), 4u);
  EXPECT_EQ(Log2Histogram::BucketOf(8), 4u);
  EXPECT_EQ(Log2Histogram::BucketOf(9), 5u);
  // Everything beyond the largest finite bound lands in the +Inf bucket.
  EXPECT_EQ(Log2Histogram::BucketOf(uint64_t{1} << 15),
            Log2Histogram::kBuckets - 1);
  EXPECT_EQ(Log2Histogram::BucketOf(~uint64_t{0}), Log2Histogram::kBuckets - 1);
  // Bounds are the bucket upper edges: BucketOf(BoundOf(b)) == b.
  for (size_t b = 0; b < Log2Histogram::kFiniteBounds; ++b) {
    EXPECT_EQ(Log2Histogram::BucketOf(Log2Histogram::BoundOf(b)), b) << b;
  }
}

TEST(Log2Histogram, CumulativeCountsAndSumAreExact) {
  Log2Histogram h;
  const std::vector<uint64_t> values = {0, 0, 1, 2, 3, 4, 7, 100, 65536};
  uint64_t sum = 0;
  for (uint64_t v : values) {
    h.Record(v);
    sum += v;
  }
  const obs::HistogramSnapshot snap = h.Snapshot("test");
  EXPECT_EQ(snap.count, values.size());
  EXPECT_EQ(snap.sum, sum);
  ASSERT_EQ(snap.bounds.size(), Log2Histogram::kFiniteBounds);
  ASSERT_EQ(snap.cumulative.size(), Log2Histogram::kBuckets);
  // Cumulative counts at each bound: values <= bound.
  for (size_t b = 0; b < snap.bounds.size(); ++b) {
    uint64_t expect = 0;
    for (uint64_t v : values) expect += v <= snap.bounds[b];
    EXPECT_EQ(snap.cumulative[b], expect) << "le=" << snap.bounds[b];
  }
  EXPECT_EQ(snap.cumulative.back(), values.size());  // +Inf holds everything.
}

TEST(LatencyReservoir, QuantilesAreOrderedAndBounded) {
  LatencyReservoir r;
  for (uint64_t i = 1; i <= 100; ++i) r.Record(i);
  const LatencyReservoir::Snapshot snap = r.Snap();
  EXPECT_EQ(snap.samples, 100u);
  EXPECT_EQ(snap.max_ns, 100u);
  EXPECT_LE(snap.p50_ns, snap.p99_ns);
  EXPECT_LE(snap.p99_ns, snap.max_ns);
  EXPECT_NEAR(static_cast<double>(snap.p50_ns), 50.0, 2.0);
}

// --- Exact operation counters ----------------------------------------------

TEST(InstrumentedFilter, ScalarCountersAreExact) {
  InstrumentedFilter f(std::make_unique<CuckooFilter>(4096, 12),
                       /*configured_epsilon=*/0.002);
  const auto keys = GenerateDistinctKeys(1000, 11);
  const auto ghosts = GenerateNegativeKeys(keys, 500, 12);

  for (uint64_t k : keys) ASSERT_TRUE(f.Insert(k));
  uint64_t hits = 0;
  for (uint64_t k : keys) hits += f.Contains(k);
  for (uint64_t g : ghosts) hits += f.Contains(g);
  ASSERT_TRUE(f.Erase(keys[0]));
  EXPECT_FALSE(f.Erase(ghosts[0]));

  const FilterMetrics& m = f.metrics();
  EXPECT_EQ(m.inserts.Load(), 1000u);
  EXPECT_EQ(m.insert_failures.Load(), 0u);
  EXPECT_EQ(m.lookups.Load(), 1500u);
  EXPECT_EQ(m.lookup_hits.Load(), hits);
  EXPECT_GE(m.lookup_hits.Load(), 1000u);  // No false negatives.
  EXPECT_EQ(m.erases.Load(), 2u);
  EXPECT_EQ(m.erase_failures.Load(), 1u);
  // Cuckoo reports exactly one kick-chain event per insert attempt, and
  // the metrics block samples every kStructuralSampleEvery-th: a scripted
  // single-threaded sequence records a deterministic count.
  const obs::HistogramSnapshot kicks = m.kick_chain.Snapshot("k");
  EXPECT_EQ(kicks.count,
            (1000 + FilterMetrics::kStructuralSampleEvery - 1) /
                FilterMetrics::kStructuralSampleEvery);
}

TEST(InstrumentedFilter, BatchCountersAreExact) {
  InstrumentedFilter f(std::make_unique<BloomFilter>(4096, 12.0),
                       /*configured_epsilon=*/0.01);
  const auto keys = GenerateDistinctKeys(2000, 21);

  EXPECT_EQ(f.InsertMany(keys), keys.size());
  std::vector<uint8_t> out(keys.size());
  f.ContainsMany(keys, out.data());

  const FilterMetrics& m = f.metrics();
  EXPECT_EQ(m.inserts.Load(), 2000u);
  EXPECT_EQ(m.insert_failures.Load(), 0u);
  EXPECT_EQ(m.lookups.Load(), 2000u);
  EXPECT_EQ(m.lookup_hits.Load(), 2000u);  // All present: Bloom never loses.
  const obs::HistogramSnapshot batches = m.batch_size.Snapshot("b");
  EXPECT_EQ(batches.count, 1u);       // One ContainsMany call...
  EXPECT_EQ(batches.sum, 2000u);      // ...covering every key.
  const LatencyReservoir::Snapshot lat = m.lookup_latency.Snap();
  EXPECT_GE(lat.samples, 1u);  // Batch lookups record amortized samples.
}

TEST(InstrumentedFilter, ProbeLengthSamplesQuotientScans) {
  InstrumentedFilter f(std::make_unique<QuotientFilter>(
                           QuotientFilter::ForCapacity(4096, 0.01)),
                       0.01);
  const auto keys = GenerateDistinctKeys(2000, 31);
  for (uint64_t k : keys) ASSERT_TRUE(f.Insert(k));
  for (uint64_t k : keys) ASSERT_TRUE(f.Contains(k));
  // Quotient reports one probe-run event per lookup; sampled 1-in-S.
  const obs::HistogramSnapshot probes =
      f.metrics().probe_length.Snapshot("p");
  EXPECT_EQ(probes.count,
            (2000 + FilterMetrics::kStructuralSampleEvery - 1) /
                FilterMetrics::kStructuralSampleEvery);
  EXPECT_GE(probes.sum, probes.count);  // Every present key scans >= 1 slot.
}

TEST(InstrumentedFilter, ExpansionAndAdaptEventsAreCounted) {
  // Taffy starts tiny and doubles repeatedly under load.
  InstrumentedFilter taffy(std::make_unique<TaffyFilter>(6, 16), 0.01);
  const auto keys = GenerateDistinctKeys(2000, 41);
  for (uint64_t k : keys) ASSERT_TRUE(taffy.Insert(k));
  EXPECT_GT(taffy.metrics().expansions.Load(), 0u);

  // The adaptive cuckoo repairs reported false positives; each repair is
  // an adapt event.
  InstrumentedFilter acf(
      std::make_unique<AdaptiveCuckooFilter>(4096, /*fingerprint_bits=*/8,
                                             /*selector_bits=*/2),
      0.03);
  for (uint64_t k : keys) ASSERT_TRUE(acf.Insert(k));
  ASSERT_TRUE(acf.adaptive());
  const auto ghosts = GenerateNegativeKeys(keys, 20000, 42);
  uint64_t reported = 0;
  for (uint64_t g : ghosts) {
    if (acf.Contains(g)) {
      acf.ReportFalsePositive(g);
      ++reported;
    }
  }
  ASSERT_GT(reported, 0u) << "8-bit fingerprints must produce some FPs";
  EXPECT_EQ(acf.metrics().fp_reports.Load(), reported);
  EXPECT_GT(acf.metrics().adapt_events.Load(), 0u);
}

// --- Observed-FPR estimator --------------------------------------------------

TEST(ObservedFprEstimator, TracksGroundTruthExactly) {
  ObservedFprEstimator est;
  // Hand-built scenario with keys forced into the domain via FromMix.
  const HashedKey a = HashedKey::FromMix(64);
  const HashedKey b = HashedKey::FromMix(128);
  ASSERT_TRUE(ObservedFprEstimator::InDomain(a));
  ASSERT_TRUE(ObservedFprEstimator::InDomain(b));
  est.RecordInsert(a);
  est.RecordLookup(a, true);    // True positive.
  est.RecordLookup(a, false);   // False negative!
  est.RecordLookup(b, true);    // False positive.
  est.RecordLookup(b, false);   // True negative.
  est.RecordErase(a);
  est.RecordLookup(a, false);   // Now a true negative.

  const ObservedFprEstimator::Snapshot snap = est.Snap();
  EXPECT_EQ(snap.tracked_keys, 0u);
  EXPECT_EQ(snap.positive_lookups, 2u);
  EXPECT_EQ(snap.false_negatives, 1u);
  EXPECT_EQ(snap.negative_lookups, 3u);
  EXPECT_EQ(snap.false_positives, 1u);
  EXPECT_DOUBLE_EQ(snap.observed_fpr, 1.0 / 3.0);
}

TEST(InstrumentedFilter, ObservedFprMatchesMeasuredWithinBinomialCi) {
  const uint64_t seed = TestSeed(777);
  BBF_ANNOUNCE_SEED(seed);
  // A deliberately loose Bloom filter so the FPR is comfortably non-zero.
  InstrumentedFilter f(std::make_unique<BloomFilter>(20000, 6.0), 0.05);
  const auto keys = GenerateDistinctKeys(20000, seed);
  const auto ghosts = GenerateNegativeKeys(keys, 200000, seed + 1);
  for (uint64_t k : keys) ASSERT_TRUE(f.Insert(k));

  // Measure the true FPR over every ghost; the estimator only sees the
  // scalar lookups' 1-in-64 key-domain sample of the same stream.
  uint64_t fp = 0;
  for (uint64_t g : ghosts) fp += f.Contains(g);
  const double measured = static_cast<double>(fp) / ghosts.size();
  ASSERT_GT(measured, 0.001) << "6 bits/key must show a visible FPR";

  const ObservedFprEstimator::Snapshot snap = f.metrics().fpr.Snap();
  ASSERT_GT(snap.negative_lookups, 1000u);  // ~200k/64 sampled negatives.
  EXPECT_EQ(snap.false_negatives, 0u) << "Bloom filters have no FNs";
  // The sampled FP count is Binomial(negative_lookups, measured); accept
  // within 4 sigma plus one count of slack (4 sigma one-sided ~ 3e-5).
  const double expect_fp = snap.negative_lookups * measured;
  const double sigma = std::sqrt(expect_fp * (1.0 - measured));
  EXPECT_NEAR(static_cast<double>(snap.false_positives), expect_fp,
              4.0 * sigma + 1.0)
      << "observed_fpr=" << snap.observed_fpr << " measured=" << measured;
}

TEST(InstrumentedFilter, BatchLookupsFeedTheEstimator) {
  InstrumentedFilter f(std::make_unique<BloomFilter>(10000, 10.0), 0.01);
  const auto keys = GenerateDistinctKeys(10000, 55);
  f.InsertMany(keys);
  std::vector<uint8_t> out(keys.size());
  f.ContainsMany(keys, out.data());
  const ObservedFprEstimator::Snapshot snap = f.metrics().fpr.Snap();
  // Strided batch scoring: positions 0, 16, 32, ... intersected with the
  // 1-in-64 key domain still sees some of the 10k present keys.
  EXPECT_GT(snap.positive_lookups, 0u);
  EXPECT_EQ(snap.false_negatives, 0u);
}

// --- ShardedFilter aggregation ----------------------------------------------

TEST(InstrumentedFilter, ShardedSaturationOutcomesMatchStats) {
  SaturationConfig config;
  config.policy = SaturationPolicy::kChain;
  config.max_generations = 2;
  auto sharded = std::make_unique<ShardedFilter>(
      256, 4,
      [](uint64_t cap) -> std::unique_ptr<Filter> {
        return std::make_unique<CuckooFilter>(cap, 12);
      },
      config);
  ShardedFilter* inner = sharded.get();
  InstrumentedFilter f(std::move(sharded), 0.002);

  // Overdrive far past capacity so every outcome class appears.
  const auto keys = GenerateDistinctKeys(4000, 61);
  size_t accepted_calls = 0;
  for (uint64_t k : keys) accepted_calls += f.Insert(k);

  uint64_t accepted = 0, expanded = 0, rejected = 0;
  for (const ShardedFilter::ShardStats& s : inner->Stats()) {
    accepted += s.accepted;
    expanded += s.expanded;
    rejected += s.rejected;
  }
  EXPECT_EQ(accepted + expanded, accepted_calls);
  EXPECT_GT(expanded, 0u) << "tiny shards must chain";
  EXPECT_GT(rejected, 0u) << "max_generations=2 must eventually reject";
  EXPECT_EQ(f.metrics().insert_failures.Load(), rejected);
  // Chaining a generation reports OnExpansion through the sink.
  EXPECT_GT(f.metrics().expansions.Load(), 0u);

  // The exporter snapshot carries the aggregated Stats() surface.
  const MetricsSnapshot snap = f.Snapshot();
  auto counter = [&](const std::string& name) -> uint64_t {
    for (const auto& c : snap.counters) {
      if (c.name == name) return c.value;
    }
    ADD_FAILURE() << "missing counter " << name;
    return 0;
  };
  EXPECT_EQ(counter("saturation_accepted_total"), accepted);
  EXPECT_EQ(counter("saturation_expanded_total"), expanded);
  EXPECT_EQ(counter("saturation_rejected_total"), rejected);
}

// --- Snapshot byte-compatibility through the decorator -----------------------

TEST(InstrumentedFilter, SaveIsByteIdenticalToInnerSave) {
  auto bare = std::make_unique<CuckooFilter>(1024, 12);
  const auto keys = GenerateDistinctKeys(500, 71);
  InstrumentedFilter f(std::make_unique<CuckooFilter>(1024, 12), 0.002);
  for (uint64_t k : keys) {
    ASSERT_TRUE(bare->Insert(k));
    ASSERT_TRUE(f.Insert(k));
  }
  std::ostringstream bare_os, inst_os;
  ASSERT_TRUE(bare->Save(bare_os));
  ASSERT_TRUE(f.Save(inst_os));
  EXPECT_EQ(bare_os.str(), inst_os.str());
}

// --- Exporters ---------------------------------------------------------------

/// A hand-built snapshot with one of everything, for byte-level golden
/// validation of both exporters.
MetricsSnapshot TinySnapshot() {
  MetricsSnapshot snap;
  snap.counters.push_back({"lookups_total", 3});
  snap.gauges.push_back({"observed_fpr", 0.25});
  obs::HistogramSnapshot h;
  h.name = "batch_size";
  h.bounds = {0, 1, 2};
  h.cumulative = {0, 1, 2, 3};  // One value each in (0,1], (1,2], (2,inf).
  h.sum = 9;
  h.count = 3;
  snap.histograms.push_back(h);
  return snap;
}

TEST(Exporters, PrometheusGoldenBytes) {
  MetricsRegistry registry;
  registry.Register("demo", TinySnapshot);
  const std::string got = obs::RenderPrometheus(registry.Snapshot());
  const std::string want =
      "# TYPE bbf_lookups_total counter\n"
      "bbf_lookups_total{filter=\"demo\"} 3\n"
      "# TYPE bbf_observed_fpr gauge\n"
      "bbf_observed_fpr{filter=\"demo\"} 0.25\n"
      "# TYPE bbf_batch_size histogram\n"
      "bbf_batch_size_bucket{filter=\"demo\",le=\"0\"} 0\n"
      "bbf_batch_size_bucket{filter=\"demo\",le=\"1\"} 1\n"
      "bbf_batch_size_bucket{filter=\"demo\",le=\"2\"} 2\n"
      "bbf_batch_size_bucket{filter=\"demo\",le=\"+Inf\"} 3\n"
      "bbf_batch_size_sum{filter=\"demo\"} 9\n"
      "bbf_batch_size_count{filter=\"demo\"} 3\n";
  EXPECT_EQ(got, want);
}

TEST(Exporters, JsonGoldenBytes) {
  MetricsRegistry registry;
  registry.Register("demo", TinySnapshot);
  const std::string got = obs::RenderJson(registry.Snapshot());
  const std::string want =
      "{\n"
      "  \"filters\": [\n"
      "    {\n"
      "      \"filter\": \"demo\",\n"
      "      \"counters\": {\"lookups_total\": 3},\n"
      "      \"gauges\": {\"observed_fpr\": 0.25},\n"
      "      \"histograms\": {\n"
      "        \"batch_size\": {\"bounds\": [0, 1, 2], "
      "\"cumulative\": [0, 1, 2, 3], \"sum\": 9, \"count\": 3}\n"
      "      }\n"
      "    }\n"
      "  ]\n"
      "}\n";
  EXPECT_EQ(got, want);
}

TEST(Exporters, SeriesOfOneMetricShareOneTypeLine) {
  MetricsRegistry registry;
  registry.Register("a", TinySnapshot);
  registry.Register("b", TinySnapshot);
  const std::string page = obs::RenderPrometheus(registry.Snapshot());
  // One # TYPE line per metric even with two sources...
  size_t type_lines = 0;
  for (size_t pos = 0; (pos = page.find("# TYPE bbf_lookups_total", pos)) !=
                       std::string::npos;
       ++pos) {
    ++type_lines;
  }
  EXPECT_EQ(type_lines, 1u);
  // ...with both series present.
  EXPECT_NE(page.find("bbf_lookups_total{filter=\"a\"} 3"), std::string::npos);
  EXPECT_NE(page.find("bbf_lookups_total{filter=\"b\"} 3"), std::string::npos);
}

/// Every counter, gauge, and histogram an instrumented filter registers
/// must round-trip into both exporter formats with its exact value —
/// this is the demo's scrape page, validated metric by metric.
TEST(Exporters, EveryRegisteredMetricRoundTrips) {
  InstrumentedFilter f(std::make_unique<CuckooFilter>(4096, 12), 0.002);
  const auto keys = GenerateDistinctKeys(1000, 91);
  f.InsertMany(keys);
  std::vector<uint8_t> out(keys.size());
  f.ContainsMany(keys, out.data());
  f.Erase(keys[0]);

  MetricsRegistry registry;
  registry.Register("rt", &f);
  const auto entries = registry.Snapshot();
  ASSERT_EQ(entries.size(), 1u);
  const std::string prom = obs::RenderPrometheus(entries);
  const std::string json = obs::RenderJson(entries);

  const MetricsSnapshot& snap = entries[0].snapshot;
  EXPECT_FALSE(snap.counters.empty());
  EXPECT_FALSE(snap.gauges.empty());
  EXPECT_FALSE(snap.histograms.empty());
  for (const auto& c : snap.counters) {
    const std::string prom_line = "bbf_" + c.name + "{filter=\"rt\"} " +
                                  std::to_string(c.value) + "\n";
    EXPECT_NE(prom.find(prom_line), std::string::npos) << prom_line;
    const std::string json_frag =
        "\"" + c.name + "\": " + std::to_string(c.value);
    EXPECT_NE(json.find(json_frag), std::string::npos) << json_frag;
  }
  for (const auto& g : snap.gauges) {
    const std::string value = obs::FormatMetricValue(g.value);
    const std::string prom_line =
        "bbf_" + g.name + "{filter=\"rt\"} " + value + "\n";
    EXPECT_NE(prom.find(prom_line), std::string::npos) << prom_line;
    const std::string json_frag = "\"" + g.name + "\": " + value;
    EXPECT_NE(json.find(json_frag), std::string::npos) << json_frag;
  }
  for (const auto& h : snap.histograms) {
    EXPECT_NE(prom.find("# TYPE bbf_" + h.name + " histogram"),
              std::string::npos)
        << h.name;
    const std::string count_line = "bbf_" + h.name + "_count{filter=\"rt\"} " +
                                   std::to_string(h.count) + "\n";
    EXPECT_NE(prom.find(count_line), std::string::npos) << count_line;
    const std::string sum_line = "bbf_" + h.name + "_sum{filter=\"rt\"} " +
                                 std::to_string(h.sum) + "\n";
    EXPECT_NE(prom.find(sum_line), std::string::npos) << sum_line;
    EXPECT_NE(json.find("\"" + h.name + "\": {\"bounds\""), std::string::npos)
        << h.name;
  }
}


// --- Load-quarantine counter through the exporter ----------------------------

TEST(InstrumentedFilter, LoadQuarantineExportsMonotoneCounter) {
  const auto factory = [](uint64_t cap) -> std::unique_ptr<Filter> {
    return std::make_unique<CuckooFilter>(cap, 12);
  };
  auto sharded = std::make_unique<ShardedFilter>(500, 4, factory);
  ShardedFilter* inner = sharded.get();
  const auto keys = GenerateDistinctKeys(1500, TestSeed(81));
  for (uint64_t k : keys) sharded->Insert(k);
  std::stringstream ss;
  ASSERT_TRUE(sharded->Save(ss));
  std::string bytes = ss.str();
  bytes[bytes.size() * 3 / 4] ^= 0x40;  // Inside some shard's blob.

  // Two corrupt loads in a row: the per-call report resets, the counter
  // must not.
  uint64_t reported = 0;
  for (int round = 0; round < 2; ++round) {
    ShardedFilter::LoadReport report;
    std::istringstream broken(bytes);
    ASSERT_TRUE(inner->LoadWithReport(broken, &report));
    ASSERT_FALSE(report.AllHealthy());
    reported += report.quarantined.size();
    EXPECT_EQ(inner->TotalQuarantinedShards(), reported);
  }

  InstrumentedFilter f(std::move(sharded), 0.002);
  const MetricsSnapshot snap = f.Snapshot();
  bool found = false;
  for (const auto& c : snap.counters) {
    if (c.name == "load_quarantined_shards_total") {
      EXPECT_EQ(c.value, reported);
      found = true;
    }
  }
  EXPECT_TRUE(found) << "sharded snapshot must export the quarantine count";
}

// --- LSM lifecycle metrics through the exporters -----------------------------

TEST(Exporters, LsmLifecycleGoldenBytes) {
  // A fresh volatile tree renders all-zero lifecycle metrics with a fixed
  // name set and order — byte-validated like the TinySnapshot goldens so
  // scrape consumers can rely on the schema.
  lsm::LsmTree db(lsm::LsmOptions{});
  MetricsRegistry registry;
  registry.Register("lsm", [&db] { return db.ObsSnapshot(); });
  const std::string prom = obs::RenderPrometheus(registry.Snapshot());
  const std::string want_prom =
      "# TYPE bbf_lsm_generations_committed_total counter\n"
      "bbf_lsm_generations_committed_total{filter=\"lsm\"} 0\n"
      "# TYPE bbf_lsm_persist_failures_total counter\n"
      "bbf_lsm_persist_failures_total{filter=\"lsm\"} 0\n"
      "# TYPE bbf_lsm_wal_append_failures_total counter\n"
      "bbf_lsm_wal_append_failures_total{filter=\"lsm\"} 0\n"
      "# TYPE bbf_lsm_wal_records_replayed_total counter\n"
      "bbf_lsm_wal_records_replayed_total{filter=\"lsm\"} 0\n"
      "# TYPE bbf_lsm_filters_quarantined_total counter\n"
      "bbf_lsm_filters_quarantined_total{filter=\"lsm\"} 0\n"
      "# TYPE bbf_lsm_filters_rebuilt_total counter\n"
      "bbf_lsm_filters_rebuilt_total{filter=\"lsm\"} 0\n"
      "# TYPE bbf_lsm_manifest_fallbacks_total counter\n"
      "bbf_lsm_manifest_fallbacks_total{filter=\"lsm\"} 0\n"
      "# TYPE bbf_lsm_quarantined_reads_total counter\n"
      "bbf_lsm_quarantined_reads_total{filter=\"lsm\"} 0\n"
      "# TYPE bbf_lsm_levels gauge\n"
      "bbf_lsm_levels{filter=\"lsm\"} 0\n"
      "# TYPE bbf_lsm_runs gauge\n"
      "bbf_lsm_runs{filter=\"lsm\"} 0\n"
      "# TYPE bbf_lsm_quarantined_runs gauge\n"
      "bbf_lsm_quarantined_runs{filter=\"lsm\"} 0\n"
      "# TYPE bbf_lsm_entries gauge\n"
      "bbf_lsm_entries{filter=\"lsm\"} 0\n"
      "# TYPE bbf_lsm_filter_bits gauge\n"
      "bbf_lsm_filter_bits{filter=\"lsm\"} 0\n"
      "# TYPE bbf_lsm_generation gauge\n"
      "bbf_lsm_generation{filter=\"lsm\"} 0\n"
      "# TYPE bbf_lsm_write_amplification gauge\n"
      "bbf_lsm_write_amplification{filter=\"lsm\"} 0\n";
  EXPECT_EQ(prom, want_prom);
  const std::string json = obs::RenderJson(registry.Snapshot());
  const std::string want_json =
      "{\n"
      "  \"filters\": [\n"
      "    {\n"
      "      \"filter\": \"lsm\",\n"
      "      \"counters\": {\"lsm_generations_committed_total\": 0, "
      "\"lsm_persist_failures_total\": 0, "
      "\"lsm_wal_append_failures_total\": 0, "
      "\"lsm_wal_records_replayed_total\": 0, "
      "\"lsm_filters_quarantined_total\": 0, "
      "\"lsm_filters_rebuilt_total\": 0, "
      "\"lsm_manifest_fallbacks_total\": 0, "
      "\"lsm_quarantined_reads_total\": 0},\n"
      "      \"gauges\": {\"lsm_levels\": 0, \"lsm_runs\": 0, "
      "\"lsm_quarantined_runs\": 0, \"lsm_entries\": 0, "
      "\"lsm_filter_bits\": 0, \"lsm_generation\": 0, "
      "\"lsm_write_amplification\": 0},\n"
      "      \"histograms\": {\n"
      "      }\n"
      "    }\n"
      "  ]\n"
      "}\n";
  EXPECT_EQ(json, want_json);
}

// --- Serving-layer lifecycle metrics through the exporters -------------------

TEST(Exporters, NetServerGoldenBytes) {
  // The wire front end's connection/frame lifecycle counters (DESIGN.md
  // §14) render under the same registry as filter internals. Name set,
  // order, and bytes are pinned: dashboards alert on these series.
  net::ServerMetrics m;
  m.accepted.Add(3);
  m.closed.Add(2);
  m.evicted_idle.Add(1);
  m.evicted_deadline.Add(1);
  m.frames_served.Add(12);
  m.nacked_busy.Add(4);
  m.malformed_rejected.Add(5);
  m.drained_inflight.Add(2);
  m.keys_looked_up.Add(640);
  m.keys_inserted.Add(512);
  m.keys_insert_nacked.Add(7);
  m.http_scrapes.Add(1);
  m.tuner_ctl.Add(2);
  MetricsRegistry registry;
  registry.Register("net", [&m] { return m.Snapshot(); });
  const std::string prom = obs::RenderPrometheus(registry.Snapshot());
  const std::string want_prom =
      "# TYPE bbf_net_connections_accepted_total counter\n"
      "bbf_net_connections_accepted_total{filter=\"net\"} 3\n"
      "# TYPE bbf_net_connections_closed_total counter\n"
      "bbf_net_connections_closed_total{filter=\"net\"} 2\n"
      "# TYPE bbf_net_connections_evicted_idle_total counter\n"
      "bbf_net_connections_evicted_idle_total{filter=\"net\"} 1\n"
      "# TYPE bbf_net_connections_evicted_deadline_total counter\n"
      "bbf_net_connections_evicted_deadline_total{filter=\"net\"} 1\n"
      "# TYPE bbf_net_frames_served_total counter\n"
      "bbf_net_frames_served_total{filter=\"net\"} 12\n"
      "# TYPE bbf_net_frames_nacked_busy_total counter\n"
      "bbf_net_frames_nacked_busy_total{filter=\"net\"} 4\n"
      "# TYPE bbf_net_frames_malformed_total counter\n"
      "bbf_net_frames_malformed_total{filter=\"net\"} 5\n"
      "# TYPE bbf_net_frames_drained_inflight_total counter\n"
      "bbf_net_frames_drained_inflight_total{filter=\"net\"} 2\n"
      "# TYPE bbf_net_keys_looked_up_total counter\n"
      "bbf_net_keys_looked_up_total{filter=\"net\"} 640\n"
      "# TYPE bbf_net_keys_inserted_total counter\n"
      "bbf_net_keys_inserted_total{filter=\"net\"} 512\n"
      "# TYPE bbf_net_keys_insert_nacked_total counter\n"
      "bbf_net_keys_insert_nacked_total{filter=\"net\"} 7\n"
      "# TYPE bbf_net_http_scrapes_total counter\n"
      "bbf_net_http_scrapes_total{filter=\"net\"} 1\n"
      "# TYPE bbf_net_tuner_ctl_total counter\n"
      "bbf_net_tuner_ctl_total{filter=\"net\"} 2\n";
  EXPECT_EQ(prom, want_prom);
  const std::string json = obs::RenderJson(registry.Snapshot());
  const std::string want_json =
      "{\n"
      "  \"filters\": [\n"
      "    {\n"
      "      \"filter\": \"net\",\n"
      "      \"counters\": {\"net_connections_accepted_total\": 3, "
      "\"net_connections_closed_total\": 2, "
      "\"net_connections_evicted_idle_total\": 1, "
      "\"net_connections_evicted_deadline_total\": 1, "
      "\"net_frames_served_total\": 12, "
      "\"net_frames_nacked_busy_total\": 4, "
      "\"net_frames_malformed_total\": 5, "
      "\"net_frames_drained_inflight_total\": 2, "
      "\"net_keys_looked_up_total\": 640, "
      "\"net_keys_inserted_total\": 512, "
      "\"net_keys_insert_nacked_total\": 7, "
      "\"net_http_scrapes_total\": 1, "
      "\"net_tuner_ctl_total\": 2},\n"
      "      \"gauges\": {},\n"
      "      \"histograms\": {\n"
      "      }\n"
      "    }\n"
      "  ]\n"
      "}\n";
  EXPECT_EQ(json, want_json);
}

}  // namespace
}  // namespace bbf
