// Tests for the workload generators: the experiments lean on their
// determinism and statistical shape.

#include <algorithm>
#include <cstdint>
#include <set>
#include <unordered_map>
#include <unordered_set>

#include <gtest/gtest.h>

#include "workload/generators.h"
#include "workload/zipf.h"

namespace bbf {
namespace {

TEST(Generators, DistinctKeysAreDistinctAndDeterministic) {
  const auto a = GenerateDistinctKeys(10000, 5);
  const auto b = GenerateDistinctKeys(10000, 5);
  EXPECT_EQ(a, b);
  std::unordered_set<uint64_t> set(a.begin(), a.end());
  EXPECT_EQ(set.size(), a.size());
  const auto c = GenerateDistinctKeys(10000, 6);
  EXPECT_NE(a, c);
}

TEST(Generators, NegativeKeysAvoidExcluded) {
  const auto keys = GenerateDistinctKeys(5000, 7);
  const auto negatives = GenerateNegativeKeys(keys, 5000, 8);
  std::unordered_set<uint64_t> set(keys.begin(), keys.end());
  for (uint64_t k : negatives) ASSERT_FALSE(set.contains(k));
}

TEST(Zipf, SkewConcentratesMassOnLowRanks) {
  ZipfGenerator zipf(10000, 1.2, 3);
  std::unordered_map<uint64_t, uint64_t> counts;
  for (int i = 0; i < 100000; ++i) ++counts[zipf.Next()];
  // Rank 0 must dominate; the top-10 ranks should hold a large share.
  uint64_t top10 = 0;
  for (uint64_t r = 0; r < 10; ++r) top10 += counts[r];
  EXPECT_GT(counts[0], counts[100] * 5);
  EXPECT_GT(static_cast<double>(top10) / 100000, 0.4);
}

TEST(Zipf, ThetaZeroIsUniformish) {
  ZipfGenerator zipf(100, 0.0, 4);
  std::unordered_map<uint64_t, uint64_t> counts;
  for (int i = 0; i < 100000; ++i) ++counts[zipf.Next()];
  for (uint64_t r = 0; r < 100; ++r) {
    EXPECT_NEAR(counts[r] / 100000.0, 0.01, 0.005) << r;
  }
}

TEST(Generators, ZipfStreamCoversUniverse) {
  const auto stream = GenerateZipfStream(1000, 0.99, 50000, 9);
  EXPECT_EQ(stream.size(), 50000u);
  std::unordered_set<uint64_t> distinct(stream.begin(), stream.end());
  EXPECT_GT(distinct.size(), 500u);  // Most of the universe appears.
}

TEST(Generators, CorrelatedRangeQueriesStartNearKeys) {
  const auto keys = GenerateDistinctKeys(1000, 10);
  const std::set<uint64_t> key_set(keys.begin(), keys.end());
  const auto queries =
      GenerateRangeQueries(keys, 1000, 100, /*correlated=*/true,
                           ~uint64_t{0}, 11);
  uint64_t adjacent = 0;
  for (const auto& [lo, hi] : queries) {
    EXPECT_EQ(hi - lo + 1, 100u);
    adjacent += key_set.contains(lo - 1);
  }
  EXPECT_GT(adjacent, 900u);  // lo = key + 1 by construction.
}

TEST(Generators, UrlsAreDistinctish) {
  const auto urls = GenerateUrls(10000, 12);
  std::unordered_set<std::string> set(urls.begin(), urls.end());
  EXPECT_GT(set.size(), 9990u);
  for (const auto& u : urls) {
    EXPECT_EQ(u.rfind("http://", 0), 0u);
  }
}

TEST(Generators, DnaAlphabetAndLength) {
  const auto dna = GenerateDna(50000, 0.3, 13);
  EXPECT_EQ(dna.size(), 50000u);
  for (char c : dna) {
    ASSERT_TRUE(c == 'A' || c == 'C' || c == 'G' || c == 'T') << c;
  }
}

TEST(Generators, DnaRepeatFractionCreatesDuplication) {
  // With repeats, distinct 31-mers are noticeably fewer than positions.
  const auto repetitive = GenerateDna(200000, 0.5, 14);
  const auto fresh = GenerateDna(200000, 0.0, 15);
  auto distinct31 = [](const std::string& s) {
    std::unordered_set<uint64_t> set;
    uint64_t window = 0;
    int have = 0;
    for (char c : s) {
      window = (window << 2) | (static_cast<uint64_t>(c) & 6) >> 1;
      if (++have >= 31) set.insert(window & ((uint64_t{1} << 62) - 1));
    }
    return set.size();
  };
  EXPECT_LT(distinct31(repetitive), distinct31(fresh) * 95 / 100);
}

}  // namespace
}  // namespace bbf
