// Tests for the Bloom-filter family: classic, blocked, counting, spectral,
// d-left, scalable (chained expansion), and cascading (exactness).

#include <cmath>
#include <cstdint>
#include <numbers>
#include <unordered_map>
#include <vector>

#include <gtest/gtest.h>

#include "bloom/bloom_filter.h"
#include "bloom/cascading_bloom.h"
#include "bloom/counting_bloom.h"
#include "bloom/dleft_filter.h"
#include "bloom/scalable_bloom.h"
#include "core/factory.h"
#include "core/sizing.h"
#include "workload/generators.h"
#include "workload/zipf.h"

namespace bbf {
namespace {

constexpr uint64_t kN = 20000;

// Shared property: any Filter must never report a false negative.
template <typename F>
void ExpectNoFalseNegatives(F& filter, const std::vector<uint64_t>& keys) {
  for (uint64_t k : keys) filter.Insert(k);
  for (uint64_t k : keys) {
    ASSERT_TRUE(filter.Contains(k)) << "false negative for " << k;
  }
}

template <typename F>
double MeasureFpr(const F& filter, const std::vector<uint64_t>& negatives) {
  uint64_t fp = 0;
  for (uint64_t k : negatives) fp += filter.Contains(k);
  return static_cast<double>(fp) / negatives.size();
}

TEST(BloomFilter, NoFalseNegatives) {
  BloomFilter f(kN, 10.0);
  ExpectNoFalseNegatives(f, GenerateDistinctKeys(kN));
}

TEST(BloomFilter, FprNearTheory) {
  // 10 bits/key -> ~0.82% FPR at k = 7.
  BloomFilter f(kN, 10.0);
  const auto keys = GenerateDistinctKeys(kN);
  for (uint64_t k : keys) f.Insert(k);
  const double fpr = MeasureFpr(f, GenerateNegativeKeys(keys, 50000));
  EXPECT_GT(fpr, 0.0005);
  EXPECT_LT(fpr, 0.025);
}

TEST(BloomFilter, NumHashesMatchesOptimalFormula) {
  // k = round(b ln 2), with the untruncated ln 2 (not 0.6931).
  for (double b : {2.0, 4.0, 6.5, 8.0, 10.0, 12.0, 13.0, 16.0, 20.0, 24.0}) {
    BloomFilter f(1000, b);
    const int expected = std::max(
        1, static_cast<int>(std::lround(b * std::numbers::ln2)));
    EXPECT_EQ(f.num_hashes(), expected) << "bits_per_key = " << b;
  }
  // ForFpr sizes m/n = -ln(eps) / (ln 2)^2 and then applies the same k
  // formula, which collapses to round(lg(1/eps)).
  for (double fpr : {0.1, 0.01, 0.001, 0.0001}) {
    BloomFilter f = BloomFilter::ForFpr(1000, fpr);
    const double bits_per_key =
        -std::log(fpr) / (std::numbers::ln2 * std::numbers::ln2);
    const int expected = std::max(
        1, static_cast<int>(std::lround(bits_per_key * std::numbers::ln2)));
    EXPECT_EQ(f.num_hashes(), expected) << "fpr = " << fpr;
    EXPECT_EQ(f.num_hashes(), std::lround(-std::log2(fpr))) << "fpr = " << fpr;
  }
}

TEST(BloomFilter, FactorySizesWithExactLn2) {
  // The factory path must share the library's sizing math (core/sizing.h
  // BloomBitsFor), not a re-derived approximation: the old factory carried
  // its own -ln(eps)/0.6931^2 copy, which drifts from -ln(eps)/ln(2)^2 by
  // ~1.4e-4 relative — tens to hundreds of bits at these sizes.
  constexpr uint64_t n = 100000;
  for (double fpr : {0.04, 0.01, 0.001, 0.0001}) {
    const auto f = CreateFilter("bloom", n, fpr);
    ASSERT_NE(f, nullptr);
    const auto* bloom = dynamic_cast<const BloomFilter*>(f.get());
    ASSERT_NE(bloom, nullptr);
    // Bit-for-bit the same geometry as direct construction through the
    // shared formula...
    const BloomFilter direct(n, BloomBitsFor(fpr));
    EXPECT_EQ(bloom->SpaceBits(), direct.SpaceBits()) << "fpr = " << fpr;
    EXPECT_EQ(bloom->num_hashes(), direct.num_hashes()) << "fpr = " << fpr;
    // ...with the k = round(lg(1/eps)) collapse only the untruncated ln 2
    // produces...
    EXPECT_EQ(bloom->num_hashes(), std::lround(-std::log2(fpr)))
        << "fpr = " << fpr;
    // ...and measurably not the truncated-constant sizing.
    const auto approx_bits = static_cast<uint64_t>(
        n * (-std::log(fpr) / (0.6931 * 0.6931)));
    EXPECT_NE(bloom->SpaceBits(), approx_bits) << "fpr = " << fpr;
  }
}

TEST(BloomFilter, ForFprHitsTarget) {
  for (double target : {0.05, 0.01, 0.001}) {
    BloomFilter f = BloomFilter::ForFpr(kN, target);
    const auto keys = GenerateDistinctKeys(kN);
    for (uint64_t k : keys) f.Insert(k);
    const double fpr = MeasureFpr(f, GenerateNegativeKeys(keys, 50000));
    EXPECT_LT(fpr, target * 3) << "target " << target;
  }
}

TEST(BloomFilter, SpaceAccounting) {
  BloomFilter f(1000, 8.0);
  EXPECT_GE(f.SpaceBits(), 8000u);
  EXPECT_LT(f.SpaceBits(), 8100u);
  EXPECT_EQ(f.Class(), FilterClass::kSemiDynamic);
  EXPECT_FALSE(f.Erase(7));  // Semi-dynamic: no deletes.
}

TEST(BlockedBloomFilter, NoFalseNegativesAndReasonableFpr) {
  BlockedBloomFilter f(kN, 10.0);
  const auto keys = GenerateDistinctKeys(kN);
  ExpectNoFalseNegatives(f, keys);
  const double fpr = MeasureFpr(f, GenerateNegativeKeys(keys, 50000));
  EXPECT_LT(fpr, 0.05);  // Blocked variants pay a small FPR penalty.
}

TEST(CountingBloom, InsertEraseRoundTrip) {
  CountingBloomFilter f(kN, 16.0);
  const auto keys = GenerateDistinctKeys(kN);
  for (uint64_t k : keys) f.Insert(k);
  for (uint64_t k : keys) ASSERT_TRUE(f.Contains(k));
  // Delete half; deleted keys should (almost always) disappear, while the
  // other half must all remain.
  for (uint64_t i = 0; i < kN / 2; ++i) ASSERT_TRUE(f.Erase(keys[i]));
  for (uint64_t i = kN / 2; i < kN; ++i) {
    ASSERT_TRUE(f.Contains(keys[i])) << "false negative after deletes";
  }
}

TEST(CountingBloom, CountsAreUpperBounds) {
  CountingBloomFilter f(5000, 16.0);
  const auto stream = GenerateZipfStream(5000, 0.99, 50000);
  std::unordered_map<uint64_t, uint64_t> truth;
  for (uint64_t k : stream) {
    f.Insert(k);
    ++truth[k];
  }
  for (const auto& [k, c] : truth) {
    ASSERT_GE(f.Count(k), std::min<uint64_t>(c, 15))
        << "count must be an upper bound (mod saturation)";
  }
}

TEST(CountingBloom, SaturationIsSticky) {
  CountingBloomFilter f(100, 16.0, /*counter_bits=*/2);
  // Push one key far past the 2-bit counter max.
  for (int i = 0; i < 10; ++i) f.Insert(42);
  EXPECT_GT(f.saturated_counters(), 0u);
  EXPECT_EQ(f.Count(42), 3u);  // Pinned at max.
  for (int i = 0; i < 10; ++i) f.Erase(42);
  // Sticky saturation: the counter never decrements, so no false negative
  // can be introduced for other keys sharing it.
  EXPECT_EQ(f.Count(42), 3u);
}

TEST(CountingBloom, RebuildWithWiderCounters) {
  CountingBloomFilter f(1000, 8.0, 2);
  const auto keys = GenerateDistinctKeys(1000);
  for (uint64_t k : keys) f.Insert(k);
  CountingBloomFilter wider = f.RebuiltWithWiderCounters();
  EXPECT_EQ(wider.counter_bits(), 4);
  for (uint64_t k : keys) wider.Insert(k);
  for (uint64_t k : keys) ASSERT_TRUE(wider.Contains(k));
}

TEST(SpectralBloom, MinIncreaseTracksSkewedCounts) {
  SpectralBloomFilter f(5000, 40.0);
  const auto stream = GenerateZipfStream(5000, 1.2, 50000);
  std::unordered_map<uint64_t, uint64_t> truth;
  for (uint64_t k : stream) {
    f.Insert(k);
    ++truth[k];
  }
  // Counts are upper bounds; for most keys they should be exact.
  uint64_t exact = 0;
  for (const auto& [k, c] : truth) {
    const uint64_t est = f.Count(k);
    ASSERT_GE(est, std::min<uint64_t>(c, 255));
    exact += (est == c);
  }
  EXPECT_GT(static_cast<double>(exact) / truth.size(), 0.9);
}

TEST(DleftCounting, ExactCountsAtModerateLoad) {
  DleftCountingFilter f(10000);
  const auto stream = GenerateZipfStream(5000, 0.99, 30000);
  std::unordered_map<uint64_t, uint64_t> truth;
  for (uint64_t k : stream) {
    ASSERT_TRUE(f.Insert(k));
    ++truth[k];
  }
  // Fingerprint collisions can inflate counts, but most should be exact.
  uint64_t exact = 0;
  for (const auto& [k, c] : truth) {
    if (f.Count(k) == c) ++exact;
    ASSERT_GE(f.Count(k), 1u);
  }
  EXPECT_GT(static_cast<double>(exact) / truth.size(), 0.95);
  EXPECT_EQ(f.NumKeys(), stream.size());
}

TEST(DleftCounting, EraseRestores) {
  DleftCountingFilter f(1000);
  f.Insert(7);
  f.Insert(7);
  EXPECT_EQ(f.Count(7), 2u);
  EXPECT_TRUE(f.Erase(7));
  EXPECT_EQ(f.Count(7), 1u);
  EXPECT_TRUE(f.Erase(7));
  EXPECT_FALSE(f.Erase(999999));  // Never inserted (w.h.p. no collision).
}

TEST(DleftCounting, NoFalseNegativesUnderLoad) {
  DleftCountingFilter f(kN);
  ExpectNoFalseNegatives(f, GenerateDistinctKeys(kN));
}

TEST(ScalableBloom, GrowsChainAndKeepsFpr) {
  ScalableBloomFilter f(1000, 0.01);
  const auto keys = GenerateDistinctKeys(50000);
  for (uint64_t k : keys) f.Insert(k);
  EXPECT_GT(f.chain_length(), 3u);
  for (uint64_t k : keys) ASSERT_TRUE(f.Contains(k));
  const double fpr = MeasureFpr(f, GenerateNegativeKeys(keys, 50000));
  // The tightening series bounds total FPR near the target.
  EXPECT_LT(fpr, 0.03);
}

TEST(CascadingBloom, ExactOverClosedUniverse) {
  const auto members = GenerateDistinctKeys(5000, 1);
  const auto candidates = GenerateNegativeKeys(members, 20000, 2);
  CascadingBloomFilter f(members, candidates, 8.0, 3);
  for (uint64_t k : members) ASSERT_TRUE(f.Contains(k)) << k;
  for (uint64_t k : candidates) ASSERT_FALSE(f.Contains(k)) << k;
}

TEST(CascadingBloom, SmallerThanExactTable) {
  const auto members = GenerateDistinctKeys(20000, 1);
  const auto candidates = GenerateNegativeKeys(members, 100000, 2);
  CascadingBloomFilter f(members, candidates, 10.0, 3);
  // The cascade must be far below 64 bits per candidate (an exact table).
  EXPECT_LT(f.SpaceBits(), candidates.size() * 64 / 4);
  EXPECT_LT(f.exact_set_size(), 200u);
}

TEST(CascadingBloom, SingleLevelDegeneratesToBloomPlusExactList) {
  const auto members = GenerateDistinctKeys(1000, 1);
  const auto candidates = GenerateNegativeKeys(members, 5000, 2);
  CascadingBloomFilter f(members, candidates, 8.0, 1);
  for (uint64_t k : members) ASSERT_TRUE(f.Contains(k));
  for (uint64_t k : candidates) ASSERT_FALSE(f.Contains(k));
}

}  // namespace
}  // namespace bbf
