// Concurrent torture harness for the overload-graceful serving layer
// (DESIGN.md §9). Eight worker threads hammer one ShardedFilter with a
// mixed Insert / Contains / Erase / InsertMany / Save workload while the
// shards chain generations live. The invariants checked are the serving
// contract itself:
//   * a key whose insert was acknowledged is never a false negative;
//   * NumKeys accounting is exact: acks + batch counts - erase successes;
//   * a snapshot taken mid-storm always loads back fully healthy.
// Run under ThreadSanitizer in CI (the `tsan` job); any lock-discipline
// slip in ShardedFilter or a shard family shows up here first.

#include <atomic>
#include <cstdint>
#include <memory>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "core/factory.h"
#include "core/sharded_filter.h"
#include "cuckoo/cuckoo_filter.h"
#include "obs/instrumented.h"
#include "obs/metrics.h"
#include "quotient/quotient_filter.h"
#include "test_seed.h"
#include "util/random.h"

namespace bbf {
namespace {

constexpr int kThreads = 8;  // Fixed, not hardware_concurrency: the
                             // schedule interleaves via preemption even on
                             // one core, and TSan needs the thread count.

// Per-thread key partition: thread t owns keys (t+1)<<48 | counter, so no
// two threads ever insert or erase the same key and erase-own-key is safe
// under fingerprint multiset semantics.
uint64_t PartitionKey(int tid, uint64_t i) {
  return (static_cast<uint64_t>(tid + 1) << 48) | i;
}

// What one worker did, tallied locally and verified after the join (gtest
// assertions are cheap enough here but failures are collected, not
// asserted, inside the hot loop).
struct WorkerLog {
  std::vector<uint64_t> acked;    // Keys whose insert was acknowledged.
  std::vector<uint64_t> erased;   // Own acked keys successfully erased.
  uint64_t batch_accepted = 0;    // Sum of InsertMany return values.
  uint64_t rejected = 0;          // kRejectedFull outcomes.
  uint64_t expanded = 0;          // kExpanded outcomes.
  uint64_t own_key_misses = 0;    // Contains(acked key) returned false.
  uint64_t erase_failures = 0;    // Erase(own acked key) returned false.
};

// The chain-policy storm: per-shard capacity is tiny so the workload
// drives every shard through live generation chaining while queries and
// snapshots proceed concurrently.
TEST(ConcurrentStress, ChainPolicyTortureKeepsEveryAcknowledgedKey) {
  const uint64_t seed = TestSeed(2024);
  BBF_ANNOUNCE_SEED(seed);

  SaturationConfig config;
  config.policy = SaturationPolicy::kChain;
  config.load_threshold = 0.85;
  config.growth = 2.0;
  config.max_generations = 5;
  ShardedFilter f(
      512, 4,
      [](uint64_t cap) -> std::unique_ptr<Filter> {
        return std::make_unique<QuotientFilter>(
            QuotientFilter::ForCapacity(cap, 0.01));
      },
      config);

  std::vector<WorkerLog> logs(kThreads);
  std::atomic<bool> done{false};

  // Saver thread: snapshot mid-storm, then load the bytes into a fresh
  // filter. Save runs under per-shard reader locks, so every snapshot
  // must be a per-shard-consistent, fully healthy cut.
  std::atomic<uint64_t> snapshots_taken{0};
  std::atomic<uint64_t> snapshot_failures{0};
  std::thread saver([&] {
    while (!done.load(std::memory_order_acquire)) {
      std::stringstream ss;
      if (!f.Save(ss)) {
        snapshot_failures.fetch_add(1, std::memory_order_relaxed);
        continue;
      }
      ShardedFilter loaded(
          512, 4, [](uint64_t cap) -> std::unique_ptr<Filter> {
            return std::make_unique<QuotientFilter>(
                QuotientFilter::ForCapacity(cap, 0.01));
          });
      ShardedFilter::LoadReport report;
      if (!loaded.LoadWithReport(ss, &report) || !report.AllHealthy()) {
        snapshot_failures.fetch_add(1, std::memory_order_relaxed);
      }
      snapshots_taken.fetch_add(1, std::memory_order_relaxed);
      std::this_thread::yield();
    }
  });

  std::vector<std::thread> workers;
  workers.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    workers.emplace_back([&f, &logs, t, seed] {
      WorkerLog& log = logs[t];
      SplitMix64 rng(seed + static_cast<uint64_t>(t) * 7919);
      uint64_t next_key = 0;
      for (int op = 0; op < 2000; ++op) {
        const uint64_t dice = rng.NextBelow(10);
        if (dice < 5) {
          // Single insert of a fresh own key.
          const uint64_t key = PartitionKey(t, next_key++);
          const InsertOutcome outcome = f.InsertWithStatus(key);
          if (Accepted(outcome)) {
            log.acked.push_back(key);
            log.expanded += outcome == InsertOutcome::kExpanded;
          } else {
            ++log.rejected;
          }
        } else if (dice == 5) {
          // Batch insert of 32 fresh own keys; only the count is
          // reported, so accounting uses the count and containment
          // checks only cover fully-accepted batches.
          std::vector<uint64_t> batch;
          batch.reserve(32);
          for (int j = 0; j < 32; ++j) {
            batch.push_back(PartitionKey(t, next_key++));
          }
          const size_t n = f.InsertMany(batch);
          log.batch_accepted += n;
          if (n == batch.size()) {
            log.acked.insert(log.acked.end(), batch.begin(), batch.end());
            log.batch_accepted -= batch.size();  // Counted via acked.
          }
        } else if (dice < 9) {
          // Membership probe on one of our own acknowledged keys: a miss
          // is a false negative, the cardinal sin.
          if (!log.acked.empty()) {
            const uint64_t key = log.acked[rng.NextBelow(log.acked.size())];
            if (!f.Contains(key)) ++log.own_key_misses;
          }
        } else {
          // Random probe (usually negative); exercises the read path
          // against other shards, result is unconstrained.
          f.Contains(rng.Next());
        }
      }
    });
  }
  for (auto& w : workers) w.join();
  done.store(true, std::memory_order_release);
  saver.join();

  uint64_t total_acked = 0;
  uint64_t total_batch = 0;
  for (int t = 0; t < kThreads; ++t) {
    EXPECT_EQ(logs[t].own_key_misses, 0u) << "thread " << t;
    total_acked += logs[t].acked.size();
    total_batch += logs[t].batch_accepted;
    // Every acknowledged key is still a member after the storm.
    uint64_t missing = 0;
    for (uint64_t key : logs[t].acked) missing += !f.Contains(key);
    EXPECT_EQ(missing, 0u) << "thread " << t << " lost acked keys";
  }
  // Exact accounting: every physical slot equals one acknowledgement.
  EXPECT_EQ(f.NumKeys(), total_acked + total_batch);

  // The tiny capacity forces the storm past generation one.
  size_t total_generations = 0;
  uint64_t stats_accepted = 0;
  uint64_t stats_expanded = 0;
  for (const auto& s : f.Stats()) {
    total_generations += s.generations;
    stats_accepted += s.accepted;
    stats_expanded += s.expanded;
  }
  EXPECT_GT(total_generations, static_cast<size_t>(f.num_shards()))
      << "workload never chained a generation";
  EXPECT_EQ(stats_accepted + stats_expanded, total_acked + total_batch);

  EXPECT_GT(snapshots_taken.load(), 0u);
  EXPECT_EQ(snapshot_failures.load(), 0u);
}

// Erase torture on an uncrowded filter (kReject policy, ample capacity, so
// shards stay single-generation and erase semantics are exact): each
// thread erases half of its own acked keys; survivors must remain members
// and NumKeys must balance to the key.
TEST(ConcurrentStress, EraseTortureBalancesAccountingExactly) {
  const uint64_t seed = TestSeed(2025);
  BBF_ANNOUNCE_SEED(seed);

  SaturationConfig config;
  config.policy = SaturationPolicy::kReject;
  config.load_threshold = 0.95;
  ShardedFilter f(
      64000, 8,
      [](uint64_t cap) -> std::unique_ptr<Filter> {
        return std::make_unique<CuckooFilter>(cap, 14);
      },
      config);

  std::vector<WorkerLog> logs(kThreads);
  std::vector<std::thread> workers;
  workers.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    workers.emplace_back([&f, &logs, t, seed] {
      WorkerLog& log = logs[t];
      SplitMix64 rng(seed + static_cast<uint64_t>(t) * 104729);
      uint64_t next_key = 0;
      for (int op = 0; op < 2000; ++op) {
        const uint64_t dice = rng.NextBelow(10);
        if (dice < 5) {
          const uint64_t key = PartitionKey(t, next_key++);
          if (f.Insert(key)) {
            log.acked.push_back(key);
          } else {
            ++log.rejected;
          }
        } else if (dice < 7) {
          // Erase the oldest not-yet-erased own key. Erasing a key this
          // thread inserted exactly once must succeed.
          if (log.erased.size() < log.acked.size()) {
            const uint64_t key = log.acked[log.erased.size()];
            if (f.Erase(key)) {
              log.erased.push_back(key);
            } else {
              ++log.erase_failures;
            }
          }
        } else if (dice < 9) {
          // Probe a surviving own key.
          if (log.erased.size() < log.acked.size()) {
            const size_t live =
                log.erased.size() +
                rng.NextBelow(log.acked.size() - log.erased.size());
            if (!f.Contains(log.acked[live])) ++log.own_key_misses;
          }
        } else {
          f.Contains(rng.Next());
        }
      }
    });
  }
  for (auto& w : workers) w.join();

  uint64_t total_acked = 0;
  uint64_t total_erased = 0;
  for (int t = 0; t < kThreads; ++t) {
    EXPECT_EQ(logs[t].own_key_misses, 0u) << "thread " << t;
    EXPECT_EQ(logs[t].erase_failures, 0u) << "thread " << t;
    total_acked += logs[t].acked.size();
    total_erased += logs[t].erased.size();
    uint64_t missing = 0;
    for (size_t i = logs[t].erased.size(); i < logs[t].acked.size(); ++i) {
      missing += !f.Contains(logs[t].acked[i]);
    }
    EXPECT_EQ(missing, 0u) << "thread " << t << " lost surviving keys";
  }
  EXPECT_EQ(f.NumKeys(), total_acked - total_erased);
}

// Native-expansion torture: taffy restructures itself inside Insert, so
// kExpandInPlace must never reject, and the doubling machinery has to
// stay correct while every other thread queries mid-expansion.
TEST(ConcurrentStress, ExpandInPlaceTaffyNeverRejectsUnderStorm) {
  const uint64_t seed = TestSeed(2026);
  BBF_ANNOUNCE_SEED(seed);

  SaturationConfig config;
  config.policy = SaturationPolicy::kExpandInPlace;
  config.load_threshold = 0.85;
  ShardedFilter f(
      256, 4,
      [](uint64_t cap) -> std::unique_ptr<Filter> {
        return CreateFilter("taffy", cap, 0.01);
      },
      config);

  std::vector<WorkerLog> logs(kThreads);
  std::vector<std::thread> workers;
  workers.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    workers.emplace_back([&f, &logs, t, seed] {
      WorkerLog& log = logs[t];
      SplitMix64 rng(seed + static_cast<uint64_t>(t) * 31337);
      for (uint64_t i = 0; i < 2000; ++i) {
        const uint64_t key = PartitionKey(t, i);
        const InsertOutcome outcome = f.InsertWithStatus(key);
        if (Accepted(outcome)) {
          log.acked.push_back(key);
          log.expanded += outcome == InsertOutcome::kExpanded;
        } else {
          ++log.rejected;
        }
        if (rng.NextBelow(4) == 0 && !log.acked.empty()) {
          const uint64_t probe = log.acked[rng.NextBelow(log.acked.size())];
          if (!f.Contains(probe)) ++log.own_key_misses;
        }
      }
    });
  }
  for (auto& w : workers) w.join();

  uint64_t total_acked = 0;
  uint64_t total_expanded = 0;
  for (int t = 0; t < kThreads; ++t) {
    EXPECT_EQ(logs[t].rejected, 0u)
        << "thread " << t << ": kExpandInPlace on taffy must never reject";
    EXPECT_EQ(logs[t].own_key_misses, 0u) << "thread " << t;
    total_acked += logs[t].acked.size();
    total_expanded += logs[t].expanded;
    uint64_t missing = 0;
    for (uint64_t key : logs[t].acked) missing += !f.Contains(key);
    EXPECT_EQ(missing, 0u) << "thread " << t << " lost acked keys";
  }
  EXPECT_EQ(total_acked, static_cast<uint64_t>(kThreads) * 2000);
  EXPECT_EQ(f.NumKeys(), total_acked);
  // 16k keys into 256-key sizing: the threshold tripped, so expansion
  // statuses must have been reported.
  EXPECT_GT(total_expanded, 0u);
}

// Instrumented torture: the same 8-thread storm through an
// obs::InstrumentedFilter wrapping a sharded cuckoo. The counters are
// relaxed atomics — this test is the proof (run under TSan in CI) that
// they are race-free AND lose nothing: after the join, every metrics
// total must equal the sum of the per-thread tallies of what each call
// actually returned, and the sampled ground-truth estimator must have
// seen zero false negatives.
TEST(ConcurrentStress, InstrumentedCountersMatchPerThreadTallies) {
  const uint64_t seed = TestSeed(2027);
  BBF_ANNOUNCE_SEED(seed);

  SaturationConfig config;
  config.policy = SaturationPolicy::kReject;
  config.load_threshold = 0.9;
  obs::InstrumentedFilter f(
      std::make_unique<ShardedFilter>(
          8000, 8,
          [](uint64_t cap) -> std::unique_ptr<Filter> {
            return std::make_unique<CuckooFilter>(cap, 14);
          },
          config),
      /*configured_epsilon=*/0.01);

  struct Tally {
    uint64_t scalar_inserts = 0;
    uint64_t insert_failures = 0;
    uint64_t batch_keys = 0;
    uint64_t batch_shortfall = 0;
    uint64_t lookups = 0;   // Scalar calls + batch query counts.
    uint64_t hits = 0;      // Positive results actually returned to us.
    uint64_t erases = 0;
    uint64_t erase_failures = 0;
    uint64_t own_key_misses = 0;
    std::vector<uint64_t> acked;
    size_t erased = 0;
  };
  std::vector<Tally> tallies(kThreads);

  std::vector<std::thread> workers;
  workers.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    workers.emplace_back([&f, &tallies, t, seed] {
      Tally& log = tallies[t];
      SplitMix64 rng(seed + static_cast<uint64_t>(t) * 6151);
      uint64_t next_key = 0;
      std::vector<uint64_t> batch;
      std::vector<uint8_t> out;
      for (int op = 0; op < 2000; ++op) {
        const uint64_t dice = rng.NextBelow(12);
        if (dice < 5) {
          const uint64_t key = PartitionKey(t, next_key++);
          ++log.scalar_inserts;
          if (f.Insert(key)) {
            log.acked.push_back(key);
          } else {
            ++log.insert_failures;
          }
        } else if (dice == 5) {
          batch.clear();
          for (int j = 0; j < 32; ++j) {
            batch.push_back(PartitionKey(t, next_key++));
          }
          const size_t n = f.InsertMany(batch);
          log.batch_keys += batch.size();
          log.batch_shortfall += batch.size() - n;
        } else if (dice == 6) {
          // Batched probe over own acked keys plus random negatives.
          batch.clear();
          for (int j = 0; j < 16; ++j) {
            if (!log.acked.empty() && (j & 1) == 0) {
              batch.push_back(log.acked[rng.NextBelow(log.acked.size())]);
            } else {
              batch.push_back(rng.Next());
            }
          }
          out.assign(batch.size(), 0);
          f.ContainsMany(batch, out.data());
          log.lookups += batch.size();
          for (uint8_t o : out) log.hits += o;
        } else if (dice < 9) {
          if (log.erased < log.acked.size()) {
            ++log.erases;
            if (f.Erase(log.acked[log.erased])) {
              ++log.erased;
            } else {
              ++log.erase_failures;
            }
          }
        } else if (dice < 11) {
          if (log.erased < log.acked.size()) {
            const size_t live =
                log.erased +
                rng.NextBelow(log.acked.size() - log.erased);
            ++log.lookups;
            const bool hit = f.Contains(log.acked[live]);
            log.hits += hit;
            log.own_key_misses += !hit;
          }
        } else {
          ++log.lookups;
          log.hits += f.Contains(rng.Next());
        }
      }
    });
  }
  for (auto& w : workers) w.join();

  Tally sum;
  for (const Tally& log : tallies) {
    EXPECT_EQ(log.own_key_misses, 0u);
    EXPECT_EQ(log.erase_failures, 0u);
    sum.scalar_inserts += log.scalar_inserts;
    sum.insert_failures += log.insert_failures;
    sum.batch_keys += log.batch_keys;
    sum.batch_shortfall += log.batch_shortfall;
    sum.lookups += log.lookups;
    sum.hits += log.hits;
    sum.erases += log.erases;
    sum.erase_failures += log.erase_failures;
  }

  const obs::MetricsSnapshot snap = f.Snapshot();
  const auto counter = [&snap](std::string_view name) -> uint64_t {
    for (const auto& c : snap.counters) {
      if (c.name == name) return c.value;
    }
    ADD_FAILURE() << "missing counter " << name;
    return ~uint64_t{0};
  };
  EXPECT_EQ(counter("inserts_total"), sum.scalar_inserts + sum.batch_keys);
  EXPECT_EQ(counter("insert_failures_total"),
            sum.insert_failures + sum.batch_shortfall);
  EXPECT_EQ(counter("lookups_total"), sum.lookups);
  EXPECT_EQ(counter("lookup_hits_total"), sum.hits);
  EXPECT_EQ(counter("erases_total"), sum.erases);
  EXPECT_EQ(counter("erase_failures_total"), 0u);
  // The ground-truth estimator runs over a 1-in-64 key sample; with
  // partitioned keys and multiset erase semantics a sampled key the
  // filter acknowledged can never go missing.
  EXPECT_EQ(counter("sampled_false_negatives_total"), 0u);
}

}  // namespace
}  // namespace bbf
