// Unit and property tests for the bit/hash/succinct substrate.

#include <algorithm>
#include <cstdint>
#include <set>
#include <vector>

#include <gtest/gtest.h>

#include "util/bit_vector.h"
#include "util/bits.h"
#include "util/compact_vector.h"
#include "util/elias_fano.h"
#include "util/hash.h"
#include "util/random.h"
#include "util/rank_select.h"

namespace bbf {
namespace {

TEST(Bits, LowMask) {
  EXPECT_EQ(LowMask(0), 0u);
  EXPECT_EQ(LowMask(1), 1u);
  EXPECT_EQ(LowMask(8), 0xFFu);
  EXPECT_EQ(LowMask(64), ~uint64_t{0});
}

TEST(Bits, SelectInWord) {
  EXPECT_EQ(SelectInWord(0b1, 0), 0);
  EXPECT_EQ(SelectInWord(0b1010, 0), 1);
  EXPECT_EQ(SelectInWord(0b1010, 1), 3);
  EXPECT_EQ(SelectInWord(~uint64_t{0}, 63), 63);
}

TEST(Bits, PowersOfTwo) {
  EXPECT_EQ(NextPow2(0), 1u);
  EXPECT_EQ(NextPow2(1), 1u);
  EXPECT_EQ(NextPow2(3), 4u);
  EXPECT_EQ(NextPow2(1024), 1024u);
  EXPECT_TRUE(IsPow2(64));
  EXPECT_FALSE(IsPow2(65));
  EXPECT_FALSE(IsPow2(0));
}

TEST(Bits, FastRangeStaysInRange) {
  SplitMix64 rng(7);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_LT(FastRange64(rng.Next(), 1000), 1000u);
  }
}

TEST(Hash, DeterministicAndSeedSensitive) {
  EXPECT_EQ(Hash64(123, 1), Hash64(123, 1));
  EXPECT_NE(Hash64(123, 1), Hash64(123, 2));
  EXPECT_NE(Hash64(123, 1), Hash64(124, 1));
  EXPECT_EQ(HashBytes("hello", 9), HashBytes("hello", 9));
  EXPECT_NE(HashBytes("hello", 9), HashBytes("hellp", 9));
  EXPECT_NE(HashBytes("hello", 9), HashBytes("hello", 10));
}

TEST(Hash, BytesMatchesAllLengths) {
  // Every length boundary (0..33) hashes without reading out of bounds and
  // produces distinct values for distinct content.
  std::string s(33, 'x');
  std::set<uint64_t> values;
  for (size_t len = 0; len <= s.size(); ++len) {
    values.insert(HashBytes(s.data(), len, 5));
  }
  EXPECT_EQ(values.size(), 34u);
}

TEST(BitVector, SetGetClear) {
  BitVector bv(200);
  EXPECT_EQ(bv.size(), 200u);
  bv.Set(0);
  bv.Set(63);
  bv.Set(64);
  bv.Set(199);
  EXPECT_TRUE(bv.Get(0));
  EXPECT_TRUE(bv.Get(63));
  EXPECT_TRUE(bv.Get(64));
  EXPECT_TRUE(bv.Get(199));
  EXPECT_FALSE(bv.Get(1));
  EXPECT_EQ(bv.CountOnes(), 4u);
  bv.Clear(63);
  EXPECT_FALSE(bv.Get(63));
  EXPECT_EQ(bv.CountOnes(), 3u);
}

TEST(BitVector, GetSetBitsCrossWordBoundary) {
  BitVector bv(256);
  bv.SetBits(60, 10, 0x3FF);
  EXPECT_EQ(bv.GetBits(60, 10), 0x3FFu);
  EXPECT_EQ(bv.GetBits(59, 1), 0u);
  EXPECT_EQ(bv.GetBits(70, 1), 0u);
  bv.SetBits(60, 10, 0x155);
  EXPECT_EQ(bv.GetBits(60, 10), 0x155u);
}

TEST(BitVector, RandomizedBitsRoundTrip) {
  // Property: SetBits/GetBits behave like an array of bits.
  BitVector bv(4096);
  std::vector<bool> ref(4096, false);
  SplitMix64 rng(99);
  for (int iter = 0; iter < 2000; ++iter) {
    const int width = 1 + static_cast<int>(rng.NextBelow(64));
    const uint64_t pos = rng.NextBelow(4096 - width);
    const uint64_t val = rng.Next() & LowMask(width);
    bv.SetBits(pos, width, val);
    for (int b = 0; b < width; ++b) ref[pos + b] = (val >> b) & 1;
    // Spot-check a random read.
    const int rwidth = 1 + static_cast<int>(rng.NextBelow(64));
    const uint64_t rpos = rng.NextBelow(4096 - rwidth);
    uint64_t expect = 0;
    for (int b = 0; b < rwidth; ++b) {
      expect |= static_cast<uint64_t>(ref[rpos + b]) << b;
    }
    ASSERT_EQ(bv.GetBits(rpos, rwidth), expect) << "iter " << iter;
  }
}

TEST(CompactVector, RoundTrip) {
  CompactVector cv(100, 13);
  SplitMix64 rng(5);
  std::vector<uint64_t> ref(100);
  for (int i = 0; i < 100; ++i) {
    ref[i] = rng.Next() & LowMask(13);
    cv.Set(i, ref[i]);
  }
  for (int i = 0; i < 100; ++i) EXPECT_EQ(cv.Get(i), ref[i]);
}

TEST(CompactVector, ResizePreservesPrefix) {
  CompactVector cv(10, 7);
  for (int i = 0; i < 10; ++i) cv.Set(i, i * 3);
  cv.Resize(50);
  for (int i = 0; i < 10; ++i) EXPECT_EQ(cv.Get(i), static_cast<uint64_t>(i * 3));
  for (int i = 10; i < 50; ++i) EXPECT_EQ(cv.Get(i), 0u);
}

class RankSelectParamTest : public ::testing::TestWithParam<double> {};

TEST_P(RankSelectParamTest, MatchesNaiveAtDensity) {
  const double density = GetParam();
  const uint64_t n = 10000;
  BitVector bv(n);
  SplitMix64 rng(static_cast<uint64_t>(density * 1000) + 3);
  std::vector<bool> ref(n);
  for (uint64_t i = 0; i < n; ++i) {
    if (rng.NextDouble() < density) {
      bv.Set(i);
      ref[i] = true;
    }
  }
  RankSelect rs(bv);
  uint64_t ones = 0;
  std::vector<uint64_t> one_pos;
  std::vector<uint64_t> zero_pos;
  for (uint64_t i = 0; i < n; ++i) {
    ASSERT_EQ(rs.Rank1(i), ones);
    ASSERT_EQ(rs.Rank0(i), i - ones);
    if (ref[i]) {
      one_pos.push_back(i);
      ++ones;
    } else {
      zero_pos.push_back(i);
    }
  }
  EXPECT_EQ(rs.num_ones(), ones);
  for (uint64_t k = 0; k < one_pos.size(); ++k) {
    ASSERT_EQ(rs.Select1(k), one_pos[k]) << "k=" << k;
  }
  for (uint64_t k = 0; k < zero_pos.size(); ++k) {
    ASSERT_EQ(rs.Select0(k), zero_pos[k]) << "k=" << k;
  }
}

INSTANTIATE_TEST_SUITE_P(Densities, RankSelectParamTest,
                         ::testing::Values(0.01, 0.1, 0.5, 0.9, 0.99));

TEST(EliasFano, GetMatchesInput) {
  std::vector<uint64_t> v = {0, 1, 1, 5, 100, 100, 1000000, 1u << 30};
  EliasFano ef(v);
  ASSERT_EQ(ef.size(), v.size());
  for (size_t i = 0; i < v.size(); ++i) EXPECT_EQ(ef.Get(i), v[i]);
}

TEST(EliasFano, EmptySequence) {
  EliasFano ef((std::vector<uint64_t>()));
  EXPECT_EQ(ef.size(), 0u);
  EXPECT_FALSE(ef.NextGeq(0).has_value());
  EXPECT_FALSE(ef.ContainsInRange(0, ~uint64_t{0} >> 1));
}

TEST(EliasFano, NextGeqMatchesSet) {
  SplitMix64 rng(11);
  std::vector<uint64_t> v;
  for (int i = 0; i < 5000; ++i) v.push_back(rng.NextBelow(1u << 26));
  std::sort(v.begin(), v.end());
  EliasFano ef(v);
  std::multiset<uint64_t> ref(v.begin(), v.end());
  for (int i = 0; i < 20000; ++i) {
    const uint64_t x = rng.NextBelow((1u << 26) + 1000);
    const auto it = ref.lower_bound(x);
    const auto got = ef.NextGeq(x);
    if (it == ref.end()) {
      EXPECT_FALSE(got.has_value()) << "x=" << x;
    } else {
      ASSERT_TRUE(got.has_value()) << "x=" << x;
      EXPECT_EQ(ef.Get(*got), *it) << "x=" << x;
    }
  }
}

TEST(EliasFano, ContainsInRange) {
  std::vector<uint64_t> v = {10, 20, 30};
  EliasFano ef(v);
  EXPECT_TRUE(ef.ContainsInRange(10, 10));
  EXPECT_TRUE(ef.ContainsInRange(5, 10));
  EXPECT_TRUE(ef.ContainsInRange(11, 25));
  EXPECT_FALSE(ef.ContainsInRange(11, 19));
  EXPECT_FALSE(ef.ContainsInRange(31, 1000));
  EXPECT_FALSE(ef.ContainsInRange(0, 9));
}

TEST(EliasFano, DenseSequence) {
  // low_bits == 0 path: universe ~ n.
  std::vector<uint64_t> v;
  for (uint64_t i = 0; i < 1000; ++i) v.push_back(i);
  EliasFano ef(v);
  for (uint64_t i = 0; i < 1000; ++i) ASSERT_EQ(ef.Get(i), i);
  EXPECT_EQ(*ef.NextGeq(500), 500u);
}

TEST(SplitMix, DeterministicAndUniformish) {
  SplitMix64 a(1);
  SplitMix64 b(1);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.Next(), b.Next());
  SplitMix64 c(2);
  uint64_t below = 0;
  for (int i = 0; i < 10000; ++i) {
    if (c.NextDouble() < 0.25) ++below;
  }
  EXPECT_NEAR(below / 10000.0, 0.25, 0.02);
}

}  // namespace
}  // namespace bbf
