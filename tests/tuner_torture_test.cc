// Migration torture (DESIGN.md §15 acceptance): an 8-thread mixed
// read/write storm runs against a ShardedFilter while shards migrate
// between families under it and two extra threads poll a live Tuner.
// The contract under test: an acked key is NEVER lost — not during the
// snapshot phase, not during catch-up, not across the drain-and-swap —
// and erased keys stay erased through a migration. Run under TSan in CI.

#include <atomic>
#include <cstdint>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "core/factory.h"
#include "core/sharded_filter.h"
#include "obs/instrumented.h"
#include "tuning/tuner.h"
#include "util/random.h"

#include "test_seed.h"

namespace bbf {
namespace {

ShardedFilter::ShardFactory FamilyFactory(std::string name, double fpr) {
  return [name = std::move(name), fpr](uint64_t cap) {
    return CreateFilter(name, cap, fpr);
  };
}

constexpr int kWriters = 4;
constexpr int kReaders = 4;
constexpr int kNumShards = 8;
constexpr uint64_t kKeysPerWriter = 20'000;

TEST(TunerTorture, OnlineMigrationDropsNoAckedKeysUnderMixedStorm) {
  const uint64_t seed = TestSeed(9200);
  BBF_ANNOUNCE_SEED(seed);

  auto inner = std::make_unique<ShardedFilter>(
      uint64_t{1} << 17, kNumShards, FamilyFactory("quotient", 0.01));
  ShardedFilter* sharded = inner.get();
  ASSERT_TRUE(sharded->EnableMigration());
  obs::InstrumentedFilter filter(std::move(inner), 0.01);

  tuning::TunerConfig tuner_cfg;
  tuner_cfg.fpr_budget = 0.01;
  tuning::Tuner tuner(filter, tuner_cfg);
  ASSERT_TRUE(tuner.valid());

  std::atomic<bool> stop{false};
  std::atomic<int> writers_done{0};
  // Acked keys a writer observed missing mid-storm. Must stay 0: a
  // migration may pause a lookup, never lose a key.
  std::atomic<uint64_t> lost_mid_storm{0};
  std::atomic<uint64_t> erased_resurrected{0};
  // Each writer keeps its keys private (still-acked flag per key), so the
  // end-of-run audit needs no cross-thread synchronization beyond join.
  struct WriterLog {
    std::vector<uint64_t> keys;       // Acked inserts, in order.
    std::vector<uint8_t> live;        // 0 = later erased (ack'd erase).
  };
  std::vector<WriterLog> logs(kWriters);

  std::vector<std::thread> threads;
  for (int w = 0; w < kWriters; ++w) {
    threads.emplace_back([&, w] {
      WriterLog& log = logs[w];
      log.keys.reserve(kKeysPerWriter);
      log.live.reserve(kKeysPerWriter);
      // Disjoint key ranges per writer: high byte tags the owner.
      SplitMix64 rng(seed + static_cast<uint64_t>(w) * 7919);
      uint64_t produced = 0;
      while (produced < kKeysPerWriter && !stop.load(std::memory_order_relaxed)) {
        const uint64_t key =
            (static_cast<uint64_t>(w + 1) << 56) | (rng.Next() >> 8);
        if (filter.Insert(key)) {
          log.keys.push_back(key);
          log.live.push_back(1);
          ++produced;
        }
        // Re-verify an earlier acked key while migrations churn below us.
        if (!log.keys.empty() && (produced & 7) == 0) {
          const size_t idx = rng.NextBelow(log.keys.size());
          if (log.live[idx] && !filter.Contains(log.keys[idx])) {
            lost_mid_storm.fetch_add(1, std::memory_order_relaxed);
          }
        }
        // Occasionally erase one of our own live keys (journaled erase
        // ops must replay correctly into successors).
        if (!log.keys.empty() && rng.NextBelow(16) == 0) {
          const size_t idx = rng.NextBelow(log.keys.size());
          if (log.live[idx] && filter.Erase(log.keys[idx])) {
            log.live[idx] = 0;
          }
        }
      }
      writers_done.fetch_add(1, std::memory_order_release);
    });
  }
  for (int r = 0; r < kReaders; ++r) {
    threads.emplace_back([&, r] {
      SplitMix64 rng(seed + 104729 + static_cast<uint64_t>(r));
      std::vector<uint64_t> batch(256);
      std::vector<uint8_t> out(256);
      while (!stop.load(std::memory_order_relaxed)) {
        // Random probes exercise the scalar path; batches the grouped
        // ContainsMany path — both race against drain-and-swap.
        for (int i = 0; i < 512; ++i) filter.Contains(rng.Next());
        for (auto& k : batch) k = rng.Next();
        filter.ContainsMany(batch, out.data());
      }
    });
  }
  // Two concurrent pollers: Poll() and the wire-control closure must be
  // safe against each other and against the migration sweep below.
  std::vector<std::thread> pollers;
  for (int p = 0; p < 2; ++p) {
    pollers.emplace_back([&] {
      auto control = tuner.WireControl();
      while (!stop.load(std::memory_order_relaxed)) {
        tuner.Poll();
        control(0);  // StatusText under churn.
        std::this_thread::sleep_for(std::chrono::milliseconds(5));
      }
    });
  }

  // The migration storm: sweep every shard through a family cycle while
  // the writers and readers above never stop.
  const char* kCycle[] = {"cuckoo", "blocked-bloom", "quotient",
                          "counting-quotient"};
  // Migrations must overlap the whole write phase, so sweep until every
  // writer retired (with a generous cap for sanitizer builds).
  uint64_t migrations_ok = 0;
  uint64_t migrations_failed = 0;
  for (int cycle = 0;
       cycle < 4 || (writers_done.load(std::memory_order_acquire) < kWriters &&
                     cycle < 512);
       ++cycle) {
    for (int s = 0; s < kNumShards; ++s) {
      const auto report = sharded->MigrateShard(
          static_cast<size_t>(s), FamilyFactory(kCycle[cycle % 4], 0.01));
      if (report.ok) {
        ++migrations_ok;
      } else {
        // Permitted failures under load: backlog/journal pressure or a
        // successor refusing a replay op. All abort-safe by contract.
        ++migrations_failed;
      }
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
  }

  stop.store(true, std::memory_order_release);
  for (auto& t : threads) t.join();
  for (auto& t : pollers) t.join();

  // The storm must have actually migrated shards under traffic.
  EXPECT_GE(migrations_ok, static_cast<uint64_t>(kNumShards))
      << "ok=" << migrations_ok << " failed=" << migrations_failed;
  EXPECT_EQ(lost_mid_storm.load(), 0u);
  EXPECT_EQ(erased_resurrected.load(), 0u);

  // Quiesced audit: every key acked and not erased is still served.
  uint64_t audited = 0;
  uint64_t lost = 0;
  for (const WriterLog& log : logs) {
    for (size_t i = 0; i < log.keys.size(); ++i) {
      if (!log.live[i]) continue;
      ++audited;
      if (!filter.Contains(log.keys[i])) ++lost;
    }
  }
  EXPECT_GT(audited, uint64_t{10'000});
  EXPECT_EQ(lost, 0u) << "of " << audited << " acked keys after "
                      << migrations_ok << " migrations";
}

}  // namespace
}  // namespace bbf
