// Tests for the range filters (§2.5 / E7): SuRF, Rosetta, SNARF, Grafite,
// the prefix-Bloom baseline, and the dynamic Memento filter (DESIGN.md
// §16). The central property is shared: no range query overlapping a
// stored key may return false — including under interleaved insert/query
// schedules where the static families must rebuild mid-stream.

#include <algorithm>
#include <cstdint>
#include <memory>
#include <set>
#include <string>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "core/key.h"
#include "range/grafite.h"
#include "range/memento.h"
#include "range/prefix_bloom_range.h"
#include "range/range_filter.h"
#include "range/rosetta.h"
#include "range/snarf.h"
#include "range/surf.h"
#include "test_seed.h"
#include "util/bits.h"
#include "util/random.h"
#include "workload/generators.h"

namespace bbf {
namespace {

std::vector<uint64_t> SortedKeys(uint64_t n, uint64_t seed = 3) {
  auto keys = GenerateDistinctKeys(n, seed);
  std::sort(keys.begin(), keys.end());
  return keys;
}

// Factory so the no-false-negative property can run over every filter.
enum class Kind { kPrefixBloom, kGrafite, kSnarf, kRosetta, kSurfBase,
                  kSurfHash, kSurfReal, kMemento };

std::unique_ptr<RangeFilter> MakeFilter(Kind kind,
                                        const std::vector<uint64_t>& keys) {
  switch (kind) {
    case Kind::kMemento: {
      auto f = std::make_unique<MementoFilter>(
          MementoFilter::ForCapacity(std::max<uint64_t>(keys.size(), 1), 0.01));
      for (uint64_t k : keys) f->AddKey(k);
      return f;
    }
    case Kind::kPrefixBloom:
      return std::make_unique<PrefixBloomRangeFilter>(keys, 48, 12.0);
    case Kind::kGrafite:
      return std::make_unique<GrafiteRangeFilter>(keys, 36);
    case Kind::kSnarf:
      return std::make_unique<SnarfRangeFilter>(keys, 6);
    case Kind::kRosetta:
      // 5 levels cover dyadic nodes of ranges up to 16; ~5 bits/key/level.
      return std::make_unique<RosettaRangeFilter>(keys, 5, 24.0);
    case Kind::kSurfBase:
      return std::make_unique<SurfFilter>(keys, SurfFilter::SuffixMode::kBase,
                                          0);
    case Kind::kSurfHash:
      return std::make_unique<SurfFilter>(keys, SurfFilter::SuffixMode::kHash,
                                          8);
    case Kind::kSurfReal:
      return std::make_unique<SurfFilter>(keys, SurfFilter::SuffixMode::kReal,
                                          8);
  }
  return nullptr;
}

class RangeFilterProperty : public ::testing::TestWithParam<Kind> {};

TEST_P(RangeFilterProperty, NoFalseNegativesOnPoints) {
  const auto keys = SortedKeys(5000);
  const auto f = MakeFilter(GetParam(), keys);
  for (uint64_t k : keys) {
    ASSERT_TRUE(f->MayContain(k)) << f->Name() << " missed " << k;
  }
}

TEST_P(RangeFilterProperty, NoFalseNegativesOnRanges) {
  const auto keys = SortedKeys(3000);
  const auto f = MakeFilter(GetParam(), keys);
  SplitMix64 rng(5);
  // Ranges guaranteed to contain at least one key.
  for (int i = 0; i < 3000; ++i) {
    const uint64_t k = keys[rng.NextBelow(keys.size())];
    const uint64_t span = rng.NextBelow(1u << 20);
    const uint64_t lo = k - std::min(k, rng.NextBelow(span + 1));
    uint64_t hi = lo + span;
    if (hi < lo) hi = ~uint64_t{0};
    if (k < lo || k > hi) continue;
    ASSERT_TRUE(f->MayContainRange(lo, hi))
        << f->Name() << " [" << lo << "," << hi << "] containing " << k;
  }
}

TEST_P(RangeFilterProperty, EmptyRangesMostlyRejected) {
  const auto keys = SortedKeys(3000);
  const auto f = MakeFilter(GetParam(), keys);
  // Probe short ranges just above each key; truly empty ones should be
  // rejected most of the time by every filter at these budgets.
  std::set<uint64_t> key_set(keys.begin(), keys.end());
  SplitMix64 rng(6);
  uint64_t fp = 0;
  uint64_t total = 0;
  for (int i = 0; i < 20000; ++i) {
    const uint64_t lo = rng.Next();
    const uint64_t hi = lo + 15;
    if (hi < lo) continue;
    const auto it = key_set.lower_bound(lo);
    if (it != key_set.end() && *it <= hi) continue;  // Not empty.
    ++total;
    fp += f->MayContainRange(lo, hi);
  }
  ASSERT_GT(total, 10000u);
  EXPECT_LT(static_cast<double>(fp) / total, 0.15) << f->Name();
}

TEST_P(RangeFilterProperty, PointQueryMatchesRangeOfOne) {
  const auto keys = SortedKeys(4000, 21);
  const auto f = MakeFilter(GetParam(), keys);
  // SuRF's suffixed modes answer a point query through MayContainKey,
  // which re-checks suffix bits a range traversal cannot use — the point
  // surface may be strictly sharper than the degenerate range [k, k].
  // Everywhere else the two entry points must agree bit-for-bit.
  const bool suffix_sharpened =
      GetParam() == Kind::kSurfHash || GetParam() == Kind::kSurfReal;
  for (uint64_t k : keys) {
    ASSERT_TRUE(f->MayContain(k)) << f->Name();
    ASSERT_TRUE(f->MayContainRange(k, k)) << f->Name();
  }
  SplitMix64 rng(22);
  for (int i = 0; i < 20000; ++i) {
    const uint64_t k = rng.Next();
    const bool point = f->MayContain(k);
    const bool range = f->MayContainRange(k, k);
    if (suffix_sharpened) {
      // Sharper is allowed, looser is not: point=true must imply range=true.
      ASSERT_LE(point, range) << f->Name() << " key " << k;
    } else {
      ASSERT_EQ(point, range) << f->Name() << " key " << k;
    }
  }
}

TEST_P(RangeFilterProperty, InterleavedScheduleHasZeroFalseNegatives) {
  const uint64_t seed = TestSeed(0x1C5);
  BBF_ANNOUNCE_SEED(seed);
  const auto keys = GenerateDistinctKeys(4000, seed);
  const auto ops = GenerateInterleavedRangeOps(
      keys, /*queries_per_insert=*/2.0, /*point_frac=*/0.5,
      /*range_len=*/64, ~uint64_t{0}, seed + 1);
  const bool dynamic = GetParam() == Kind::kMemento;
  // Static families answer for the keys as of their last rebuild; the
  // dynamic family must answer for every key the moment it is added.
  constexpr size_t kRebuildEvery = 512;

  std::set<uint64_t> inserted;
  std::vector<uint64_t> inserted_v;
  std::set<uint64_t> visible;
  std::unique_ptr<RangeFilter> filter;
  MementoFilter* memento = nullptr;
  if (dynamic) {
    auto f = std::make_unique<MementoFilter>(
        MementoFilter::ForCapacity(keys.size(), 0.01));
    memento = f.get();
    filter = std::move(f);
  }
  size_t since_rebuild = 0;
  SplitMix64 rng(seed + 2);
  for (const RangeOp& op : ops) {
    switch (op.kind) {
      case RangeOp::Kind::kInsert:
        inserted.insert(op.lo);
        inserted_v.push_back(op.lo);
        if (dynamic) {
          ASSERT_TRUE(memento->AddKey(op.lo));
          visible.insert(op.lo);
        } else if (++since_rebuild >= kRebuildEvery || !filter) {
          std::vector<uint64_t> sorted(inserted.begin(), inserted.end());
          filter = MakeFilter(GetParam(), sorted);
          visible = inserted;
          since_rebuild = 0;
        }
        break;
      case RangeOp::Kind::kPointQuery:
      case RangeOp::Kind::kRangeQuery: {
        const auto it = visible.lower_bound(op.lo);
        if (it != visible.end() && *it <= op.hi) {
          ASSERT_TRUE(filter->MayContainRange(op.lo, op.hi))
              << filter->Name() << " lost [" << op.lo << "," << op.hi << "]";
        } else {
          filter->MayContainRange(op.lo, op.hi);  // FP allowed, crash not.
        }
        break;
      }
    }
    // Uniform queries almost never straddle a key, so add direct pressure:
    // a short range around a random visible key must always be admitted.
    if (!visible.empty() && rng.NextBelow(8) == 0) {
      const uint64_t k = inserted_v[rng.NextBelow(inserted_v.size())];
      if (visible.contains(k)) {
        const uint64_t lo = k - std::min(k, rng.NextBelow(64));
        uint64_t hi = k + rng.NextBelow(64);
        if (hi < k) hi = ~uint64_t{0};
        ASSERT_TRUE(filter->MayContainRange(lo, hi))
            << filter->Name() << " lost key " << k;
        ASSERT_TRUE(filter->MayContain(k)) << filter->Name() << " " << k;
      }
    }
  }
  EXPECT_EQ(inserted.size(), keys.size());
  if (dynamic) EXPECT_EQ(memento->NumKeys(), keys.size());
}

INSTANTIATE_TEST_SUITE_P(
    AllFilters, RangeFilterProperty,
    ::testing::Values(Kind::kPrefixBloom, Kind::kGrafite, Kind::kSnarf,
                      Kind::kRosetta, Kind::kSurfBase, Kind::kSurfHash,
                      Kind::kSurfReal, Kind::kMemento),
    [](const ::testing::TestParamInfo<Kind>& info) {
      switch (info.param) {
        case Kind::kPrefixBloom: return "PrefixBloom";
        case Kind::kGrafite: return "Grafite";
        case Kind::kSnarf: return "Snarf";
        case Kind::kRosetta: return "Rosetta";
        case Kind::kSurfBase: return "SurfBase";
        case Kind::kSurfHash: return "SurfHash";
        case Kind::kSurfReal: return "SurfReal";
        case Kind::kMemento: return "Memento";
      }
      return "Unknown";
    });

// --- Filter-specific behaviour --------------------------------------------

TEST(Surf, PointQueriesWithHashSuffixSharpenFpr) {
  const auto keys = SortedKeys(20000);
  SurfFilter base(keys, SurfFilter::SuffixMode::kBase, 0);
  SurfFilter hash(keys, SurfFilter::SuffixMode::kHash, 8);
  const auto negatives = GenerateNegativeKeys(keys, 50000);
  uint64_t fp_base = 0;
  uint64_t fp_hash = 0;
  for (uint64_t k : negatives) {
    fp_base += base.MayContain(k);
    fp_hash += hash.MayContain(k);
  }
  // 8 suffix bits must cut point FPs by roughly 2^8.
  EXPECT_LT(fp_hash * 20, fp_base + 100);
}

TEST(Surf, StringKeysAndPrefixRelations) {
  std::vector<std::string> keys = {"app", "apple", "applet", "banana",
                                   "band", "bandit"};
  std::sort(keys.begin(), keys.end());
  SurfFilter f(keys, SurfFilter::SuffixMode::kReal, 8);
  for (const auto& k : keys) {
    EXPECT_TRUE(f.MayContainKey(k)) << k;
  }
  EXPECT_FALSE(f.MayContainKey("zebra"));
  EXPECT_FALSE(f.MayContainKey("cherry"));
  // Range over strings.
  EXPECT_TRUE(f.MayContainStringRange("bana", "bandz"));
  EXPECT_FALSE(f.MayContainStringRange("c", "z"));
}

TEST(Surf, AdversarialLongCommonPrefixesBlowUpSpace) {
  // The paper: "an adversarial workload (each pair of keys produces a
  // unique long prefix) can destroy SuRF's space efficiency."
  std::vector<uint64_t> benign = SortedKeys(4000, 7);
  // Adversarial: keys agreeing on high 48 bits pairwise chains.
  std::vector<uint64_t> adversarial;
  SplitMix64 rng(8);
  for (int i = 0; i < 2000; ++i) {
    const uint64_t base = rng.Next() & ~LowMask(16);
    adversarial.push_back(base);
    adversarial.push_back(base | 1);  // Twin differing at the last bits.
  }
  std::sort(adversarial.begin(), adversarial.end());
  adversarial.erase(std::unique(adversarial.begin(), adversarial.end()),
                    adversarial.end());
  SurfFilter fb(benign, SurfFilter::SuffixMode::kBase, 0);
  SurfFilter fa(adversarial, SurfFilter::SuffixMode::kBase, 0);
  const double benign_bpk =
      static_cast<double>(fb.SpaceBits()) / benign.size();
  const double adv_bpk =
      static_cast<double>(fa.SpaceBits()) / adversarial.size();
  EXPECT_GT(adv_bpk, benign_bpk * 2);
}

TEST(Grafite, RobustUnderCorrelatedQueries) {
  // Queries starting right after existing keys — the workload that breaks
  // trie-based filters — should not degrade Grafite beyond its bound.
  const auto keys = SortedKeys(20000, 9);
  GrafiteRangeFilter f(keys, 38);
  std::set<uint64_t> key_set(keys.begin(), keys.end());
  const auto queries =
      GenerateRangeQueries(keys, 20000, 64, /*correlated=*/true,
                           ~uint64_t{0});
  uint64_t fp = 0;
  uint64_t total = 0;
  for (const auto& [lo, hi] : queries) {
    const auto it = key_set.lower_bound(lo);
    if (it != key_set.end() && *it <= hi) continue;
    ++total;
    fp += f.MayContainRange(lo, hi);
  }
  ASSERT_GT(total, 1000u);
  EXPECT_LT(static_cast<double>(fp) / total, 0.05);
}

TEST(Rosetta, FprGrowsWithRangeLength) {
  const auto keys = SortedKeys(5000, 11);
  RosettaRangeFilter f(keys, 22, 22.0);
  std::set<uint64_t> key_set(keys.begin(), keys.end());
  SplitMix64 rng(12);
  std::vector<double> fprs;
  for (uint64_t len_log : {2, 10, 26}) {
    uint64_t fp = 0;
    uint64_t total = 0;
    for (int i = 0; i < 4000; ++i) {
      const uint64_t lo = rng.Next();
      const uint64_t hi = lo + (uint64_t{1} << len_log) - 1;
      if (hi < lo) continue;
      const auto it = key_set.lower_bound(lo);
      if (it != key_set.end() && *it <= hi) continue;
      ++total;
      fp += f.MayContainRange(lo, hi);
    }
    fprs.push_back(total ? static_cast<double>(fp) / total : 0);
  }
  EXPECT_LE(fprs[0], fprs[2]);
  // Beyond the maintained levels Rosetta provides no filtering.
  EXPECT_GT(fprs[2], 0.9);
}

TEST(Snarf, UniformKeysGiveTargetFpr) {
  const auto keys = SortedKeys(30000, 13);
  SnarfRangeFilter f(keys, 6);  // ~2^-6 per-point slack.
  std::set<uint64_t> key_set(keys.begin(), keys.end());
  SplitMix64 rng(14);
  uint64_t fp = 0;
  uint64_t total = 0;
  for (int i = 0; i < 30000; ++i) {
    const uint64_t lo = rng.Next();
    const uint64_t hi = lo;  // Point queries.
    const auto it = key_set.lower_bound(lo);
    if (it != key_set.end() && *it <= hi) continue;
    ++total;
    fp += f.MayContainRange(lo, hi);
  }
  EXPECT_LT(static_cast<double>(fp) / total, 0.05);
}

TEST(PrefixBloom, GivesUpOnWideRanges) {
  const auto keys = SortedKeys(1000, 15);
  PrefixBloomRangeFilter f(keys, 48, 12.0, /*max_probes=*/16);
  // A range spanning far more than 16 prefixes cannot be filtered.
  EXPECT_TRUE(f.MayContainRange(0, ~uint64_t{0}));
}

TEST(EmptyFilters, HandleZeroKeys) {
  const std::vector<uint64_t> none;
  EXPECT_FALSE(SnarfRangeFilter(none, 6).MayContainRange(0, 100));
  EXPECT_FALSE(
      SurfFilter(none, SurfFilter::SuffixMode::kBase, 0).MayContain(7));
  EXPECT_FALSE(GrafiteRangeFilter(none, 20).MayContainRange(0, 100));
  EXPECT_FALSE(MementoFilter(6, 8).MayContainRange(0, 100));
}

// --- Memento: the dynamic range filter (DESIGN.md §16) --------------------

TEST(Memento, OnlineInsertsWithExpansionPreserveEveryKey) {
  const uint64_t seed = TestSeed(0x3117);
  BBF_ANNOUNCE_SEED(seed);
  // Start tiny (64 quotients) so 20k inserts force many doublings.
  MementoFilter f(/*q_bits=*/6, /*r_bits=*/12);
  const auto keys = GenerateDistinctKeys(20000, seed);
  for (size_t i = 0; i < keys.size(); ++i) {
    ASSERT_TRUE(f.AddKey(keys[i])) << "insert " << i;
    if ((i & 2047) == 0) {
      ASSERT_TRUE(f.CheckInvariants()) << "insert " << i;
    }
  }
  EXPECT_GE(f.expansions(), 8u);
  EXPECT_EQ(f.NumKeys(), keys.size());
  ASSERT_TRUE(f.CheckInvariants());
  // Expansion re-splits fingerprints; no key may be lost across it.
  for (uint64_t k : keys) {
    ASSERT_TRUE(f.MayContain(k)) << "lost " << k;
    ASSERT_TRUE(f.MayContainRange(k, k)) << "lost (range) " << k;
  }
}

TEST(Memento, CorrelatedRangeQueriesStayNearConfiguredFpr) {
  const uint64_t seed = TestSeed(0xC0DE);
  BBF_ANNOUNCE_SEED(seed);
  const auto keys = GenerateDistinctKeys(20000, seed);
  MementoFilter f = MementoFilter::ForCapacity(keys.size(), 0.01);
  for (uint64_t k : keys) ASSERT_TRUE(f.AddKey(k));
  std::set<uint64_t> key_set(keys.begin(), keys.end());
  // Queries starting right after stored keys — the workload that breaks
  // trie-based filters. Memento answers same-prefix windows exactly from
  // the sorted memento lists, so correlation must not push the FPR past
  // 1.5x the configured 1%.
  const auto queries = GenerateRangeQueries(keys, 20000, /*range_len=*/64,
                                            /*correlated=*/true, ~uint64_t{0},
                                            seed + 1);
  uint64_t fp = 0;
  uint64_t total = 0;
  for (const auto& [lo, hi] : queries) {
    const auto it = key_set.lower_bound(lo);
    if (it != key_set.end() && *it <= hi) continue;
    ++total;
    fp += f.MayContainRange(lo, hi);
  }
  ASSERT_GT(total, 10000u);
  EXPECT_LT(static_cast<double>(fp) / total, 0.015);
}

TEST(Memento, DuplicateKeysKeepMultiplicity) {
  MementoFilter f(/*q_bits=*/6, /*r_bits=*/8);
  for (int i = 0; i < 5; ++i) ASSERT_TRUE(f.AddKey(42));
  EXPECT_EQ(f.NumKeys(), 5u);
  EXPECT_TRUE(f.MayContain(42));
  ASSERT_TRUE(f.CheckInvariants());
}

TEST(Memento, EmptyFilterRejectsNarrowRangesAndGivesUpOnWide) {
  MementoFilter f(/*q_bits=*/6, /*r_bits=*/8);
  EXPECT_FALSE(f.MayContain(123));
  EXPECT_FALSE(f.MayContainRange(1000, 2000));  // ~5 prefixes at m=8.
  // A range spanning more than kMaxInteriorProbes prefixes is admitted
  // unseen — the same give-up contract as the prefix-Bloom family.
  EXPECT_TRUE(f.MayContainRange(0, ~uint64_t{0}));
}

TEST(Memento, FilterAndRangeSurfacesAgree) {
  const uint64_t seed = TestSeed(0xFACE);
  BBF_ANNOUNCE_SEED(seed);
  const auto keys = GenerateDistinctKeys(5000, seed);
  MementoFilter f = MementoFilter::ForCapacity(keys.size(), 0.01);
  for (uint64_t k : keys) ASSERT_TRUE(f.AddKey(k));
  // The point-filter surface (Filter::Contains over a HashedKey) and the
  // range surface must give identical answers for the same raw key.
  SplitMix64 rng(seed + 1);
  for (int i = 0; i < 20000; ++i) {
    const uint64_t k =
        (i & 1) ? keys[rng.NextBelow(keys.size())] : rng.Next();
    ASSERT_EQ(f.Contains(HashedKey(k)), f.MayContainRange(k, k)) << k;
  }
}

}  // namespace
}  // namespace bbf
