// Tests for the range filters (§2.5 / E7): SuRF, Rosetta, SNARF, Grafite,
// and the prefix-Bloom baseline. The central property is shared: no range
// query overlapping a stored key may return false.

#include <algorithm>
#include <cstdint>
#include <memory>
#include <set>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "range/grafite.h"
#include "range/prefix_bloom_range.h"
#include "range/range_filter.h"
#include "range/rosetta.h"
#include "range/snarf.h"
#include "range/surf.h"
#include "util/bits.h"
#include "util/random.h"
#include "workload/generators.h"

namespace bbf {
namespace {

std::vector<uint64_t> SortedKeys(uint64_t n, uint64_t seed = 3) {
  auto keys = GenerateDistinctKeys(n, seed);
  std::sort(keys.begin(), keys.end());
  return keys;
}

// Factory so the no-false-negative property can run over every filter.
enum class Kind { kPrefixBloom, kGrafite, kSnarf, kRosetta, kSurfBase,
                  kSurfHash, kSurfReal };

std::unique_ptr<RangeFilter> MakeFilter(Kind kind,
                                        const std::vector<uint64_t>& keys) {
  switch (kind) {
    case Kind::kPrefixBloom:
      return std::make_unique<PrefixBloomRangeFilter>(keys, 48, 12.0);
    case Kind::kGrafite:
      return std::make_unique<GrafiteRangeFilter>(keys, 36);
    case Kind::kSnarf:
      return std::make_unique<SnarfRangeFilter>(keys, 6);
    case Kind::kRosetta:
      // 5 levels cover dyadic nodes of ranges up to 16; ~5 bits/key/level.
      return std::make_unique<RosettaRangeFilter>(keys, 5, 24.0);
    case Kind::kSurfBase:
      return std::make_unique<SurfFilter>(keys, SurfFilter::SuffixMode::kBase,
                                          0);
    case Kind::kSurfHash:
      return std::make_unique<SurfFilter>(keys, SurfFilter::SuffixMode::kHash,
                                          8);
    case Kind::kSurfReal:
      return std::make_unique<SurfFilter>(keys, SurfFilter::SuffixMode::kReal,
                                          8);
  }
  return nullptr;
}

class RangeFilterProperty : public ::testing::TestWithParam<Kind> {};

TEST_P(RangeFilterProperty, NoFalseNegativesOnPoints) {
  const auto keys = SortedKeys(5000);
  const auto f = MakeFilter(GetParam(), keys);
  for (uint64_t k : keys) {
    ASSERT_TRUE(f->MayContain(k)) << f->Name() << " missed " << k;
  }
}

TEST_P(RangeFilterProperty, NoFalseNegativesOnRanges) {
  const auto keys = SortedKeys(3000);
  const auto f = MakeFilter(GetParam(), keys);
  SplitMix64 rng(5);
  // Ranges guaranteed to contain at least one key.
  for (int i = 0; i < 3000; ++i) {
    const uint64_t k = keys[rng.NextBelow(keys.size())];
    const uint64_t span = rng.NextBelow(1u << 20);
    const uint64_t lo = k - std::min(k, rng.NextBelow(span + 1));
    uint64_t hi = lo + span;
    if (hi < lo) hi = ~uint64_t{0};
    if (k < lo || k > hi) continue;
    ASSERT_TRUE(f->MayContainRange(lo, hi))
        << f->Name() << " [" << lo << "," << hi << "] containing " << k;
  }
}

TEST_P(RangeFilterProperty, EmptyRangesMostlyRejected) {
  const auto keys = SortedKeys(3000);
  const auto f = MakeFilter(GetParam(), keys);
  // Probe short ranges just above each key; truly empty ones should be
  // rejected most of the time by every filter at these budgets.
  std::set<uint64_t> key_set(keys.begin(), keys.end());
  SplitMix64 rng(6);
  uint64_t fp = 0;
  uint64_t total = 0;
  for (int i = 0; i < 20000; ++i) {
    const uint64_t lo = rng.Next();
    const uint64_t hi = lo + 15;
    if (hi < lo) continue;
    const auto it = key_set.lower_bound(lo);
    if (it != key_set.end() && *it <= hi) continue;  // Not empty.
    ++total;
    fp += f->MayContainRange(lo, hi);
  }
  ASSERT_GT(total, 10000u);
  EXPECT_LT(static_cast<double>(fp) / total, 0.15) << f->Name();
}

INSTANTIATE_TEST_SUITE_P(
    AllFilters, RangeFilterProperty,
    ::testing::Values(Kind::kPrefixBloom, Kind::kGrafite, Kind::kSnarf,
                      Kind::kRosetta, Kind::kSurfBase, Kind::kSurfHash,
                      Kind::kSurfReal),
    [](const ::testing::TestParamInfo<Kind>& info) {
      switch (info.param) {
        case Kind::kPrefixBloom: return "PrefixBloom";
        case Kind::kGrafite: return "Grafite";
        case Kind::kSnarf: return "Snarf";
        case Kind::kRosetta: return "Rosetta";
        case Kind::kSurfBase: return "SurfBase";
        case Kind::kSurfHash: return "SurfHash";
        case Kind::kSurfReal: return "SurfReal";
      }
      return "Unknown";
    });

// --- Filter-specific behaviour --------------------------------------------

TEST(Surf, PointQueriesWithHashSuffixSharpenFpr) {
  const auto keys = SortedKeys(20000);
  SurfFilter base(keys, SurfFilter::SuffixMode::kBase, 0);
  SurfFilter hash(keys, SurfFilter::SuffixMode::kHash, 8);
  const auto negatives = GenerateNegativeKeys(keys, 50000);
  uint64_t fp_base = 0;
  uint64_t fp_hash = 0;
  for (uint64_t k : negatives) {
    fp_base += base.MayContain(k);
    fp_hash += hash.MayContain(k);
  }
  // 8 suffix bits must cut point FPs by roughly 2^8.
  EXPECT_LT(fp_hash * 20, fp_base + 100);
}

TEST(Surf, StringKeysAndPrefixRelations) {
  std::vector<std::string> keys = {"app", "apple", "applet", "banana",
                                   "band", "bandit"};
  std::sort(keys.begin(), keys.end());
  SurfFilter f(keys, SurfFilter::SuffixMode::kReal, 8);
  for (const auto& k : keys) {
    EXPECT_TRUE(f.MayContainKey(k)) << k;
  }
  EXPECT_FALSE(f.MayContainKey("zebra"));
  EXPECT_FALSE(f.MayContainKey("cherry"));
  // Range over strings.
  EXPECT_TRUE(f.MayContainStringRange("bana", "bandz"));
  EXPECT_FALSE(f.MayContainStringRange("c", "z"));
}

TEST(Surf, AdversarialLongCommonPrefixesBlowUpSpace) {
  // The paper: "an adversarial workload (each pair of keys produces a
  // unique long prefix) can destroy SuRF's space efficiency."
  std::vector<uint64_t> benign = SortedKeys(4000, 7);
  // Adversarial: keys agreeing on high 48 bits pairwise chains.
  std::vector<uint64_t> adversarial;
  SplitMix64 rng(8);
  for (int i = 0; i < 2000; ++i) {
    const uint64_t base = rng.Next() & ~LowMask(16);
    adversarial.push_back(base);
    adversarial.push_back(base | 1);  // Twin differing at the last bits.
  }
  std::sort(adversarial.begin(), adversarial.end());
  adversarial.erase(std::unique(adversarial.begin(), adversarial.end()),
                    adversarial.end());
  SurfFilter fb(benign, SurfFilter::SuffixMode::kBase, 0);
  SurfFilter fa(adversarial, SurfFilter::SuffixMode::kBase, 0);
  const double benign_bpk =
      static_cast<double>(fb.SpaceBits()) / benign.size();
  const double adv_bpk =
      static_cast<double>(fa.SpaceBits()) / adversarial.size();
  EXPECT_GT(adv_bpk, benign_bpk * 2);
}

TEST(Grafite, RobustUnderCorrelatedQueries) {
  // Queries starting right after existing keys — the workload that breaks
  // trie-based filters — should not degrade Grafite beyond its bound.
  const auto keys = SortedKeys(20000, 9);
  GrafiteRangeFilter f(keys, 38);
  std::set<uint64_t> key_set(keys.begin(), keys.end());
  const auto queries =
      GenerateRangeQueries(keys, 20000, 64, /*correlated=*/true,
                           ~uint64_t{0});
  uint64_t fp = 0;
  uint64_t total = 0;
  for (const auto& [lo, hi] : queries) {
    const auto it = key_set.lower_bound(lo);
    if (it != key_set.end() && *it <= hi) continue;
    ++total;
    fp += f.MayContainRange(lo, hi);
  }
  ASSERT_GT(total, 1000u);
  EXPECT_LT(static_cast<double>(fp) / total, 0.05);
}

TEST(Rosetta, FprGrowsWithRangeLength) {
  const auto keys = SortedKeys(5000, 11);
  RosettaRangeFilter f(keys, 22, 22.0);
  std::set<uint64_t> key_set(keys.begin(), keys.end());
  SplitMix64 rng(12);
  std::vector<double> fprs;
  for (uint64_t len_log : {2, 10, 26}) {
    uint64_t fp = 0;
    uint64_t total = 0;
    for (int i = 0; i < 4000; ++i) {
      const uint64_t lo = rng.Next();
      const uint64_t hi = lo + (uint64_t{1} << len_log) - 1;
      if (hi < lo) continue;
      const auto it = key_set.lower_bound(lo);
      if (it != key_set.end() && *it <= hi) continue;
      ++total;
      fp += f.MayContainRange(lo, hi);
    }
    fprs.push_back(total ? static_cast<double>(fp) / total : 0);
  }
  EXPECT_LE(fprs[0], fprs[2]);
  // Beyond the maintained levels Rosetta provides no filtering.
  EXPECT_GT(fprs[2], 0.9);
}

TEST(Snarf, UniformKeysGiveTargetFpr) {
  const auto keys = SortedKeys(30000, 13);
  SnarfRangeFilter f(keys, 6);  // ~2^-6 per-point slack.
  std::set<uint64_t> key_set(keys.begin(), keys.end());
  SplitMix64 rng(14);
  uint64_t fp = 0;
  uint64_t total = 0;
  for (int i = 0; i < 30000; ++i) {
    const uint64_t lo = rng.Next();
    const uint64_t hi = lo;  // Point queries.
    const auto it = key_set.lower_bound(lo);
    if (it != key_set.end() && *it <= hi) continue;
    ++total;
    fp += f.MayContainRange(lo, hi);
  }
  EXPECT_LT(static_cast<double>(fp) / total, 0.05);
}

TEST(PrefixBloom, GivesUpOnWideRanges) {
  const auto keys = SortedKeys(1000, 15);
  PrefixBloomRangeFilter f(keys, 48, 12.0, /*max_probes=*/16);
  // A range spanning far more than 16 prefixes cannot be filtered.
  EXPECT_TRUE(f.MayContainRange(0, ~uint64_t{0}));
}

TEST(EmptyFilters, HandleZeroKeys) {
  const std::vector<uint64_t> none;
  EXPECT_FALSE(SnarfRangeFilter(none, 6).MayContainRange(0, 100));
  EXPECT_FALSE(
      SurfFilter(none, SurfFilter::SuffixMode::kBase, 0).MayContain(7));
  EXPECT_FALSE(GrafiteRangeFilter(none, 20).MayContainRange(0, 100));
}

}  // namespace
}  // namespace bbf
