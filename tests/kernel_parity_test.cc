// Kernel-parity property suite (src/simd): every ISA the host can run
// must agree with the portable scalar kernel bit for bit — on query
// answers, on table contents (snapshot bytes), and across kernels
// (snapshot written under one ISA, loaded and queried under another).
// The dispatch plumbing itself (names, availability, force hooks) is
// covered here too, since CI pins kernels through it.

#include <cstdint>
#include <sstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "bloom/bloom_filter.h"
#include "cuckoo/adaptive_cuckoo_filter.h"
#include "cuckoo/cuckoo_filter.h"
#include "cuckoo/cuckoo_maplet.h"
#include "simd/dispatch.h"
#include "simd/kernels.h"
#include "test_seed.h"
#include "workload/generators.h"

namespace bbf {
namespace {

// Batch shapes chosen to stress the tile machinery: sub-tile (1, 7),
// one-short-of-tile (31), one-past-tile (33), and multi-tile (257).
const size_t kBatchSizes[] = {1, 7, 31, 33, 257};

/// Pins kernel dispatch to `isa` for the enclosing scope.
class ScopedIsa {
 public:
  explicit ScopedIsa(simd::Isa isa) {
    EXPECT_TRUE(simd::ForceIsaForTesting(isa))
        << "ISA " << simd::IsaName(isa) << " not available";
  }
  ~ScopedIsa() { simd::ClearForcedIsaForTesting(); }
};

std::vector<HashedKey> ToHashed(const std::vector<uint64_t>& raw) {
  std::vector<HashedKey> keys;
  keys.reserve(raw.size());
  for (uint64_t k : raw) keys.push_back(HashedKey(k));
  return keys;
}

/// Batch + per-key answers of `filter` for `keys` under the forced `isa`,
/// exercising every tail shape in kBatchSizes.
template <typename F>
std::vector<uint8_t> QueryUnderIsa(const F& filter,
                                   const std::vector<HashedKey>& keys,
                                   simd::Isa isa) {
  ScopedIsa forced(isa);
  std::vector<uint8_t> out(keys.size(), 0xEE);
  for (size_t batch : kBatchSizes) {
    for (size_t base = 0; base < keys.size(); base += batch) {
      const size_t n = std::min(batch, keys.size() - base);
      filter.ContainsMany(std::span<const HashedKey>(&keys[base], n),
                          &out[base]);
    }
    // Per-key Contains must agree with the batch path under every ISA.
    for (size_t i = 0; i < keys.size(); ++i) {
      EXPECT_EQ(filter.Contains(keys[i]), out[i] != 0)
          << "Contains vs ContainsMany diverge under "
          << simd::IsaName(isa) << " at key " << i << ", batch " << batch;
    }
  }
  return out;
}

TEST(KernelDispatch, NamesRoundTrip) {
  for (int i = 0; i < simd::kNumIsas; ++i) {
    const simd::Isa isa = static_cast<simd::Isa>(i);
    simd::Isa parsed;
    ASSERT_TRUE(simd::ParseIsaName(simd::IsaName(isa), &parsed));
    EXPECT_EQ(parsed, isa);
  }
  simd::Isa parsed;
  EXPECT_FALSE(simd::ParseIsaName("sse9", &parsed));
  EXPECT_FALSE(simd::ParseIsaName("", &parsed));
}

TEST(KernelDispatch, ScalarAlwaysAvailableAndActiveIsListed) {
  EXPECT_TRUE(simd::IsaCompiledIn(simd::Isa::kScalar));
  EXPECT_TRUE(simd::IsaAvailable(simd::Isa::kScalar));
  const auto available = simd::AvailableIsas();
  ASSERT_FALSE(available.empty());
  EXPECT_EQ(available.front(), simd::Isa::kScalar);
  bool active_listed = false;
  for (simd::Isa isa : available) {
    if (isa == simd::ActiveIsa()) active_listed = true;
    // Every available kernel table must actually exist.
    EXPECT_NE(simd::BloomKernelFor(isa), nullptr);
    EXPECT_NE(simd::CuckooKernelFor(isa), nullptr);
    EXPECT_EQ(simd::BloomKernelFor(isa)->name, simd::IsaName(isa));
  }
  EXPECT_TRUE(active_listed);
}

TEST(KernelDispatch, ForceHookRejectsUnavailableAndPinsAvailable) {
  // At least one of AVX2/NEON is unavailable on any host (they are
  // mutually exclusive architectures), giving a guaranteed reject case.
  const simd::Isa unavailable = simd::IsaAvailable(simd::Isa::kNeon)
                                    ? simd::Isa::kAvx2
                                    : simd::Isa::kNeon;
  EXPECT_FALSE(simd::ForceIsaForTesting(unavailable));
  for (simd::Isa isa : simd::AvailableIsas()) {
    ASSERT_TRUE(simd::ForceIsaForTesting(isa));
    EXPECT_EQ(simd::ActiveIsa(), isa);
    EXPECT_EQ(&simd::ActiveBloomKernel(), simd::BloomKernelFor(isa));
    EXPECT_EQ(&simd::ActiveCuckooKernel(), simd::CuckooKernelFor(isa));
  }
  simd::ClearForcedIsaForTesting();
}

TEST(KernelParity, BlockedBloomAllIsasMatchScalar) {
  const uint64_t seed = TestSeed(0xB10B);
  BBF_ANNOUNCE_SEED(seed);
  // k sweeps the kernel group shapes: below one vector group (<= 8),
  // exactly one, just past one, multi-group, and the 64-probe cap.
  for (int k : {1, 5, 7, 8, 9, 13, 24, 64}) {
    SCOPED_TRACE("num_hashes=" + std::to_string(k));
    BlockedBloomFilter filter(4000, 12.0, k);
    const auto raw = GenerateDistinctKeys(4000, seed);
    {
      ScopedIsa scalar(simd::Isa::kScalar);
      for (uint64_t key : raw) filter.Insert(key);
    }
    auto queries = ToHashed(raw);
    for (uint64_t k2 : GenerateNegativeKeys(raw, 4000)) {
      queries.push_back(HashedKey(k2));
    }
    const auto reference = QueryUnderIsa(filter, queries, simd::Isa::kScalar);
    for (simd::Isa isa : simd::AvailableIsas()) {
      SCOPED_TRACE(std::string("isa=") + std::string(simd::IsaName(isa)));
      EXPECT_EQ(QueryUnderIsa(filter, queries, isa), reference);
    }
  }
}

TEST(KernelParity, BlockedBloomSaturatedFilterMatches) {
  // A filter driven far past design capacity has nearly every bit set —
  // the all-lanes-hit reduction path the vector kernels must get right.
  BlockedBloomFilter filter(64, 8.0);
  const auto raw = GenerateDistinctKeys(5000, TestSeed(0x5A7));
  {
    ScopedIsa scalar(simd::Isa::kScalar);
    for (uint64_t key : raw) filter.Insert(key);
  }
  const auto queries = ToHashed(GenerateDistinctKeys(2000, 7));
  const auto reference = QueryUnderIsa(filter, queries, simd::Isa::kScalar);
  for (simd::Isa isa : simd::AvailableIsas()) {
    SCOPED_TRACE(std::string("isa=") + std::string(simd::IsaName(isa)));
    EXPECT_EQ(QueryUnderIsa(filter, queries, isa), reference);
  }
}

/// Runs an identical insert/erase workload under `isa` and returns the
/// snapshot bytes. Table contents must not depend on the kernel.
std::string BloomSnapshotUnderIsa(simd::Isa isa,
                                  const std::vector<uint64_t>& raw) {
  ScopedIsa forced(isa);
  BlockedBloomFilter filter(2000, 10.0);
  size_t i = 0;
  for (uint64_t key : raw) {
    if (++i % 3 == 0) {
      filter.InsertMany(std::span<const uint64_t>(&key, 1));
    } else {
      filter.Insert(key);
    }
  }
  std::ostringstream os;
  EXPECT_TRUE(filter.Save(os));
  return std::move(os).str();
}

TEST(KernelParity, BlockedBloomSnapshotBytesIdenticalAcrossIsas) {
  const auto raw = GenerateDistinctKeys(2000, TestSeed(0x51AB));
  const std::string reference =
      BloomSnapshotUnderIsa(simd::Isa::kScalar, raw);
  for (simd::Isa isa : simd::AvailableIsas()) {
    SCOPED_TRACE(std::string("isa=") + std::string(simd::IsaName(isa)));
    EXPECT_EQ(BloomSnapshotUnderIsa(isa, raw), reference);
  }
}

TEST(KernelParity, BlockedBloomSnapshotRoundTripsAcrossIsas) {
  // Written under the widest kernel, loaded and queried under every other
  // — the bit layout is the contract, not the kernel.
  const auto raw = GenerateDistinctKeys(3000, TestSeed(0x0557));
  const auto writer_isas = simd::AvailableIsas();
  std::string bytes;
  {
    ScopedIsa forced(writer_isas.back());
    BlockedBloomFilter writer(3000, 12.0);
    for (uint64_t key : raw) writer.Insert(key);
    std::ostringstream os;
    ASSERT_TRUE(writer.Save(os));
    bytes = std::move(os).str();
  }
  for (simd::Isa isa : writer_isas) {
    SCOPED_TRACE(std::string("isa=") + std::string(simd::IsaName(isa)));
    ScopedIsa forced(isa);
    BlockedBloomFilter reader(1, 12.0);
    std::istringstream is(bytes);
    ASSERT_TRUE(reader.Load(is));
    for (uint64_t key : raw) {
      ASSERT_TRUE(reader.Contains(key)) << "false negative after load";
    }
  }
}

std::string CuckooSnapshotUnderIsa(simd::Isa isa, int fingerprint_bits,
                                   const std::vector<uint64_t>& raw) {
  ScopedIsa forced(isa);
  CuckooFilter filter(raw.size(), fingerprint_bits);
  size_t i = 0;
  for (uint64_t key : raw) {
    filter.Insert(key);
    if (++i % 5 == 0) filter.Erase(key);  // Exercise mask-driven erase.
  }
  std::ostringstream os;
  EXPECT_TRUE(filter.Save(os));
  return std::move(os).str();
}

TEST(KernelParity, CuckooAllIsasMatchScalar) {
  const uint64_t seed = TestSeed(0xCC1);
  BBF_ANNOUNCE_SEED(seed);
  // Widths sweep the packed-kernel envelope (4w <= 64) plus one width on
  // the legacy per-slot path (20) for coverage of the fallback.
  for (int f_bits : {4, 8, 12, 15, 16, 20}) {
    SCOPED_TRACE("fingerprint_bits=" + std::to_string(f_bits));
    CuckooFilter filter(3000, f_bits);
    const auto raw = GenerateDistinctKeys(2500, seed);
    {
      ScopedIsa scalar(simd::Isa::kScalar);
      for (uint64_t key : raw) filter.Insert(key);
    }
    auto queries = ToHashed(raw);
    for (uint64_t k : GenerateNegativeKeys(raw, 2500)) {
      queries.push_back(HashedKey(k));
    }
    const auto reference = QueryUnderIsa(filter, queries, simd::Isa::kScalar);
    for (simd::Isa isa : simd::AvailableIsas()) {
      SCOPED_TRACE(std::string("isa=") + std::string(simd::IsaName(isa)));
      EXPECT_EQ(QueryUnderIsa(filter, queries, isa), reference);
      // Count must agree with the scalar kernel too (it counts
      // fingerprint matches, so collisions can make it > 1 — the value
      // just must not depend on the kernel).
      for (size_t i = 0; i < 200; ++i) {
        uint64_t expected;
        {
          ScopedIsa scalar(simd::Isa::kScalar);
          expected = filter.Count(queries[i]);
        }
        ScopedIsa forced(isa);
        EXPECT_EQ(filter.Count(queries[i]), expected);
      }
    }
  }
}

TEST(KernelParity, CuckooSnapshotBytesIdenticalAcrossIsas) {
  const auto raw = GenerateDistinctKeys(2000, TestSeed(0xC5AB));
  for (int f_bits : {8, 12}) {
    SCOPED_TRACE("fingerprint_bits=" + std::to_string(f_bits));
    const std::string reference =
        CuckooSnapshotUnderIsa(simd::Isa::kScalar, f_bits, raw);
    for (simd::Isa isa : simd::AvailableIsas()) {
      SCOPED_TRACE(std::string("isa=") + std::string(simd::IsaName(isa)));
      EXPECT_EQ(CuckooSnapshotUnderIsa(isa, f_bits, raw), reference);
    }
  }
}

TEST(KernelParity, AdaptiveCuckooMatchesScalarBeforeAndAfterAdaptation) {
  const uint64_t seed = TestSeed(0xADA);
  BBF_ANNOUNCE_SEED(seed);
  AdaptiveCuckooFilter filter(2000, 12);
  const auto raw = GenerateDistinctKeys(1500, seed);
  {
    ScopedIsa scalar(simd::Isa::kScalar);
    for (uint64_t key : raw) filter.Insert(key);
  }
  auto queries = ToHashed(raw);
  const auto negatives = GenerateNegativeKeys(raw, 1500);
  for (uint64_t k : negatives) queries.push_back(HashedKey(k));
  // Zero-selector steady state: the packed fast path.
  auto reference = QueryUnderIsa(filter, queries, simd::Isa::kScalar);
  for (simd::Isa isa : simd::AvailableIsas()) {
    SCOPED_TRACE(std::string("isa=") + std::string(simd::IsaName(isa)));
    EXPECT_EQ(QueryUnderIsa(filter, queries, isa), reference);
  }
  // Adapt away every observed false positive, then re-check parity on the
  // mixed state (some buckets adapted -> per-slot path, most not).
  {
    ScopedIsa scalar(simd::Isa::kScalar);
    for (uint64_t k : negatives) {
      if (filter.Contains(k)) filter.ReportFalsePositive(HashedKey(k));
    }
  }
  reference = QueryUnderIsa(filter, queries, simd::Isa::kScalar);
  for (simd::Isa isa : simd::AvailableIsas()) {
    SCOPED_TRACE(std::string("isa=") + std::string(simd::IsaName(isa)));
    EXPECT_EQ(QueryUnderIsa(filter, queries, isa), reference);
  }
}

TEST(KernelParity, CuckooMapletLookupOrderIdenticalAcrossIsas) {
  const uint64_t seed = TestSeed(0x3A9);
  BBF_ANNOUNCE_SEED(seed);
  CuckooMaplet maplet(2000, 12, 16);
  const auto raw = GenerateDistinctKeys(1500, seed);
  {
    ScopedIsa scalar(simd::Isa::kScalar);
    for (size_t i = 0; i < raw.size(); ++i) {
      maplet.Insert(HashedKey(raw[i]), i & 0xFFFF);
      // Duplicate some keys so Lookup returns multi-value sequences whose
      // ORDER the kernels must reproduce, not just their contents.
      if (i % 7 == 0) maplet.Insert(HashedKey(raw[i]), (i + 1) & 0xFFFF);
    }
  }
  for (size_t i = 0; i < raw.size(); i += 3) {
    std::vector<uint64_t> reference;
    {
      ScopedIsa scalar(simd::Isa::kScalar);
      reference = maplet.Lookup(HashedKey(raw[i]));
    }
    for (simd::Isa isa : simd::AvailableIsas()) {
      ScopedIsa forced(isa);
      ASSERT_EQ(maplet.Lookup(HashedKey(raw[i])), reference)
          << "value order diverges under " << simd::IsaName(isa)
          << " for key index " << i;
    }
  }
}

}  // namespace
}  // namespace bbf
