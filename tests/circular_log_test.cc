// Tests for the circular-log storage engine (§3.1): correctness against a
// reference model, maplet expansion vs rebuild strategies, GC.

#include <cstdint>
#include <map>
#include <optional>

#include <gtest/gtest.h>

#include "apps/lsm/circular_log.h"
#include "quotient/expanding_quotient_maplet.h"
#include "util/random.h"
#include "workload/generators.h"

namespace bbf::lsm {
namespace {

TEST(ExpandingQuotientMaplet, GrowsAndKeepsAssociations) {
  bbf::ExpandingQuotientMaplet m(8, 16, 16);
  const auto keys = bbf::GenerateDistinctKeys(20000, 61);
  for (uint32_t i = 0; i < keys.size(); ++i) {
    ASSERT_TRUE(m.Insert(keys[i], i & 0xFFFF));
  }
  EXPECT_GE(m.expansions(), 5);
  for (uint32_t i = 0; i < keys.size(); ++i) {
    const auto vals = m.Lookup(keys[i]);
    ASSERT_FALSE(vals.empty());
    bool found = false;
    for (uint64_t v : vals) found |= v == (i & 0xFFFF);
    ASSERT_TRUE(found) << i;
  }
}

TEST(ExpandingQuotientMaplet, EraseWorksAcrossExpansions) {
  bbf::ExpandingQuotientMaplet m(6, 14, 8);
  const auto keys = bbf::GenerateDistinctKeys(2000, 62);
  for (uint32_t i = 0; i < keys.size(); ++i) {
    ASSERT_TRUE(m.Insert(keys[i], i & 0xFF));
  }
  ASSERT_GT(m.expansions(), 0);
  for (uint32_t i = 0; i < keys.size(); ++i) {
    ASSERT_TRUE(m.Erase(keys[i], i & 0xFF)) << i;
  }
  EXPECT_EQ(m.NumEntries(), 0u);
}

class CircularLogModel
    : public ::testing::TestWithParam<CircularLog::ExpandStrategy> {};

TEST_P(CircularLogModel, RandomOpsMatchReference) {
  CircularLog::Options o;
  o.expand = GetParam();
  o.initial_q_bits = 8;
  CircularLog db(o);
  std::map<uint64_t, uint64_t> ref;
  bbf::SplitMix64 rng(63);
  for (int op = 0; op < 30000; ++op) {
    const uint64_t key = rng.NextBelow(3000) + 1;
    const double dice = rng.NextDouble();
    if (dice < 0.6) {
      const uint64_t value = rng.Next();
      db.Put(key, value);
      ref[key] = value;
    } else if (dice < 0.8) {
      db.Delete(key);
      ref.erase(key);
    } else {
      const auto got = db.Get(key);
      const auto it = ref.find(key);
      if (it == ref.end()) {
        ASSERT_EQ(got, std::nullopt) << "op " << op;
      } else {
        ASSERT_EQ(got, std::optional<uint64_t>(it->second)) << "op " << op;
      }
    }
  }
  for (const auto& [k, v] : ref) {
    ASSERT_EQ(db.Get(k), std::optional<uint64_t>(v));
  }
  EXPECT_EQ(db.live_entries(), ref.size());
}

INSTANTIATE_TEST_SUITE_P(
    Strategies, CircularLogModel,
    ::testing::Values(CircularLog::ExpandStrategy::kExpandMaplet,
                      CircularLog::ExpandStrategy::kRebuildFromLog),
    [](const ::testing::TestParamInfo<CircularLog::ExpandStrategy>& info) {
      return info.param == CircularLog::ExpandStrategy::kExpandMaplet
                 ? "ExpandMaplet"
                 : "RebuildFromLog";
    });

TEST(CircularLog, ExpandStrategyAvoidsRebuildIo) {
  const auto keys = bbf::GenerateDistinctKeys(60000, 64);
  CircularLog::Options expand_opts;
  expand_opts.expand = CircularLog::ExpandStrategy::kExpandMaplet;
  expand_opts.initial_q_bits = 10;
  CircularLog::Options rebuild_opts = expand_opts;
  rebuild_opts.expand = CircularLog::ExpandStrategy::kRebuildFromLog;

  CircularLog expanding(expand_opts);
  CircularLog rebuilding(rebuild_opts);
  for (uint64_t k : keys) {
    expanding.Put(k, k);
    rebuilding.Put(k, k);
  }
  EXPECT_GT(expanding.maplet_expansions(), 3);
  EXPECT_EQ(expanding.rebuilds(), 0u);
  EXPECT_GT(rebuilding.rebuilds(), 3u);
  // Rebuilding scans the log on every growth step: far more read I/O.
  EXPECT_GT(rebuilding.io().data_reads, expanding.io().data_reads * 2);
  // But its fingerprints stay full-length, so fewer wasted probes.
  EXPECT_LE(rebuilding.io().false_probes, expanding.io().false_probes);
}

TEST(CircularLog, GcCompactsDeadRecords) {
  CircularLog::Options o;
  o.initial_q_bits = 8;
  CircularLog db(o);
  // Overwrite the same small key set many times: mostly-dead log.
  for (int round = 0; round < 50; ++round) {
    for (uint64_t k = 1; k <= 500; ++k) db.Put(k, round);
  }
  EXPECT_GT(db.gc_runs(), 0u);
  EXPECT_LT(db.log_records(), 25000u / 2);  // Far fewer than 25k appends.
  for (uint64_t k = 1; k <= 500; ++k) {
    ASSERT_EQ(db.Get(k), std::optional<uint64_t>(49));
  }
}

TEST(CircularLog, LookupNoiseIsCharged) {
  CircularLog::Options o;
  o.fingerprint_bits = 6;  // Deliberately noisy maplet.
  CircularLog db(o);
  const auto keys = bbf::GenerateDistinctKeys(20000, 65);
  for (uint64_t k : keys) db.Put(k, 1);
  db.ResetIo();
  const auto ghosts = bbf::GenerateNegativeKeys(keys, 20000, 66);
  for (uint64_t g : ghosts) db.Get(g);
  // Noise = wasted page reads on absent keys.
  EXPECT_GT(db.io().false_probes, 50u);
}

}  // namespace
}  // namespace bbf::lsm
