// Seed plumbing for randomized tests: every stress/property test draws its
// RNG seed through TestSeed() so a failure is reproducible. The seed is
// announced via SCOPED_TRACE on failure, and BBF_TEST_SEED=<n> in the
// environment overrides every default — rerunning a flaky report is one
// env var away.

#ifndef BBF_TESTS_TEST_SEED_H_
#define BBF_TESTS_TEST_SEED_H_

#include <cstdint>
#include <cstdlib>

namespace bbf {

/// The test's RNG seed: `default_seed` unless the BBF_TEST_SEED
/// environment variable is set (parsed with strtoull, so decimal and 0x
/// hex both work).
inline uint64_t TestSeed(uint64_t default_seed) {
  if (const char* env = std::getenv("BBF_TEST_SEED")) {
    return std::strtoull(env, nullptr, 0);
  }
  return default_seed;
}

}  // namespace bbf

/// Prefixes every assertion failure in the enclosing scope with the seed
/// and the command to replay it. Use right after drawing the seed:
///   const uint64_t seed = TestSeed(42);
///   BBF_ANNOUNCE_SEED(seed);
#define BBF_ANNOUNCE_SEED(seed)                                      \
  SCOPED_TRACE(::testing::Message()                                  \
               << "rng seed " << (seed)                              \
               << " (replay with BBF_TEST_SEED=" << (seed) << ")")

#endif  // BBF_TESTS_TEST_SEED_H_
