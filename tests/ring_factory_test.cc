// Tests for the elastic hash-ring filter and the filter factory.

#include <cstdint>
#include <unordered_map>

#include <gtest/gtest.h>

#include "core/factory.h"
#include "expandable/ring_filter.h"
#include "util/random.h"
#include "workload/generators.h"

namespace bbf {
namespace {

TEST(RingFilter, BasicRoundTrip) {
  RingFilter f(12);
  EXPECT_FALSE(f.Contains(9));
  EXPECT_TRUE(f.Insert(9));
  EXPECT_TRUE(f.Contains(9));
  EXPECT_TRUE(f.Erase(9));
  EXPECT_FALSE(f.Contains(9));
  EXPECT_FALSE(f.Erase(9));
}

TEST(RingFilter, ElasticGrowthNeverLosesKeys) {
  RingFilter f(12, /*segment_capacity=*/1024);
  const auto keys = GenerateDistinctKeys(100000, 121);
  for (uint64_t k : keys) ASSERT_TRUE(f.Insert(k));
  // 100k keys over 1k-capacity segments: substantial elastic growth.
  EXPECT_GT(f.num_segments(), 50u);
  for (uint64_t k : keys) ASSERT_TRUE(f.Contains(k)) << k;
}

TEST(RingFilter, FprStaysNearFingerprintRate) {
  RingFilter f(12, 2048);
  const auto keys = GenerateDistinctKeys(100000, 122);
  for (uint64_t k : keys) f.Insert(k);
  const auto negatives = GenerateNegativeKeys(keys, 100000, 123);
  uint64_t fp = 0;
  for (uint64_t k : negatives) fp += f.Contains(k);
  // Bucket load ~ 100k/4M; FPR ~ load * 2^-12: tiny. No fingerprint bits
  // were sacrificed during the 50+ segment splits.
  EXPECT_LT(static_cast<double>(fp) / negatives.size(), 0.001);
}

TEST(RingFilter, OpsAreRingSearches) {
  RingFilter f(10, 512);
  const auto keys = GenerateDistinctKeys(5000, 124);
  for (uint64_t k : keys) f.Insert(k);
  const uint64_t before = f.ring_searches();
  for (uint64_t k : keys) f.Contains(k);
  // Every query consulted the ring exactly once.
  EXPECT_EQ(f.ring_searches() - before, keys.size());
}

TEST(RingFilter, ChurnAgainstReference) {
  RingFilter f(14, 512);
  std::unordered_map<uint64_t, uint64_t> ref;
  SplitMix64 rng(125);
  for (int op = 0; op < 30000; ++op) {
    const uint64_t key = rng.NextBelow(3000);
    if (rng.NextDouble() < 0.6) {
      ASSERT_TRUE(f.Insert(key));
      ++ref[key];
    } else {
      auto it = ref.find(key);
      if (it != ref.end()) {
        ASSERT_TRUE(f.Erase(key)) << op;
        if (--it->second == 0) ref.erase(it);
      }
    }
  }
  for (const auto& [k, c] : ref) ASSERT_TRUE(f.Contains(k));
}

TEST(Factory, EveryKnownNameConstructsAWorkingFilter) {
  const auto keys = GenerateDistinctKeys(3000, 126);
  const auto negatives = GenerateNegativeKeys(keys, 10000, 127);
  for (std::string_view name : KnownFilterNames()) {
    const auto filter = CreateFilter(name, keys.size(), 0.01);
    ASSERT_NE(filter, nullptr) << name;
    EXPECT_EQ(filter->Name().substr(0, 4), name.substr(0, 4)) << name;
    for (uint64_t k : keys) {
      ASSERT_TRUE(filter->Insert(k)) << name;
    }
    for (uint64_t k : keys) {
      ASSERT_TRUE(filter->Contains(k)) << name;
    }
    uint64_t fp = 0;
    for (uint64_t k : negatives) fp += filter->Contains(k);
    EXPECT_LT(static_cast<double>(fp) / negatives.size(), 0.08) << name;
  }
}

TEST(Factory, UnknownNameReturnsNull) {
  EXPECT_EQ(CreateFilter("no-such-filter", 100, 0.01), nullptr);
  EXPECT_EQ(CreateFilter("xor", 100, 0.01), nullptr);  // Static: no entry.
}

}  // namespace
}  // namespace bbf
