#ifndef BBF_TESTS_FAULT_INJECTION_H_
#define BBF_TESTS_FAULT_INJECTION_H_

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

namespace bbf {
namespace fault {

/// One corrupted copy of a snapshot blob, with a human-readable label so
/// a failing replay names the exact fault that slipped through.
struct Corruption {
  std::string name;
  std::string blob;
};

/// Single-bit flips at deterministically random positions. Every byte of
/// the frame is checksummed or validated, so a correct loader must reject
/// all of them.
std::vector<Corruption> BitFlipCorruptions(const std::string& blob,
                                           uint64_t seed, int count);

/// Truncations of `blob` at exactly the given offsets (deduplicated,
/// out-of-range cuts skipped) — the building block for both the
/// frame-aware battery below and callers that know their own layout
/// (manifest sweeps, WAL tails, multi-frame files).
std::vector<Corruption> TruncationsAt(const std::string& blob,
                                      std::vector<size_t> cuts);

/// Layout-agnostic battery for any byte buffer (manifest payloads, WAL
/// files, whole directories' files): bit flips, evenly spaced + boundary
/// truncations, and torn writes. Unlike AllCorruptions it assumes nothing
/// about the §8 frame layout.
std::vector<Corruption> GenericCorruptions(const std::string& blob,
                                           uint64_t seed);

/// Reads a whole file into `out`; false if unreadable.
bool ReadFileBytes(const std::string& path, std::string* out);

/// Replaces the file at `path` with `bytes` (plain overwrite — tests
/// corrupt files in place on purpose, atomicity is the system under
/// test's job, not ours). False on I/O error.
bool WriteFileBytes(const std::string& path, const std::string& bytes);

/// Truncations at every header/frame boundary (magic, version, tag
/// length, tag, payload length, checksum) plus sampled interior payload
/// positions — the crash-mid-write family.
std::vector<Corruption> TruncationCorruptions(const std::string& blob);

/// Torn writes: an intact prefix followed by stale bytes (zeros or
/// deterministic garbage), as when a crash leaves old sector contents
/// behind the write frontier.
std::vector<Corruption> TornWriteCorruptions(const std::string& blob,
                                             uint64_t seed);

/// Hostile length fields: the frame's tag-length and payload-length u64s
/// overwritten with huge values. A loader that trusts them allocates
/// unbounded memory before noticing anything is wrong.
std::vector<Corruption> HostileLengthCorruptions(const std::string& blob);

/// The whole battery above.
std::vector<Corruption> AllCorruptions(const std::string& blob,
                                       uint64_t seed);

/// Byte-layout description of ANY framed buffer — the generalization of
/// the §8-specific batteries above, introduced for the wire protocol
/// (DESIGN.md §14) and shared by net_test and wire_fuzz_test. A layout
/// owner (e.g. apps/net/wire.h) exports its field offsets once; the
/// corpus generator derives every boundary-targeted fault from them.
struct FrameSpec {
  /// Offsets where one header field ends and the next begins (including
  /// 0 and the payload start). Truncations are generated at each, one
  /// byte either side, and sampled payload interiors.
  std::vector<size_t> field_boundaries;
  /// Offsets of little-endian u64/u32 length or count fields, each
  /// overwritten with hostile values (huge, just-over-cap, all-ones).
  std::vector<size_t> length_field_offsets;
  /// Offset of a u64 checksum field, bit-flipped so the payload no
  /// longer matches. SIZE_MAX = the frame has no checksum field.
  size_t checksum_offset = SIZE_MAX;
};

/// Bit flips confined to the 8 bytes at `offset` — checksum-mismatch
/// faults that leave every other header field intact.
std::vector<Corruption> ChecksumFlipCorruptions(const std::string& blob,
                                                size_t offset);

/// The generalized wire-frame corpus: truncations at every field
/// boundary (±1 byte and sampled payload interiors), hostile values in
/// every declared length field, checksum flips, random bit flips, and
/// torn tails. Every receiver of framed bytes — the snapshot loaders,
/// the network server, any future WAL reader — must survive the entire
/// corpus without crashing or allocating toward a hostile length.
std::vector<Corruption> FrameCorpus(const std::string& blob,
                                    const FrameSpec& spec, uint64_t seed);

/// Replays every corruption through `load` (which should stream-parse the
/// blob and return whether the load succeeded). Returns the names of
/// corruptions that were *accepted* — expected to be empty for any filter
/// whose snapshot is a single frame.
std::vector<std::string> ReplayExpectingRejection(
    const std::vector<Corruption>& corruptions,
    const std::function<bool(const std::string& blob)>& load);

}  // namespace fault
}  // namespace bbf

#endif  // BBF_TESTS_FAULT_INJECTION_H_
