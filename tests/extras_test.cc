// Tests for the vector quotient filter, prefix filter, sharded concurrent
// wrapper, and binary serialization.

#include <cstdint>
#include <sstream>
#include <thread>
#include <unordered_map>
#include <vector>

#include <gtest/gtest.h>

#include "bloom/bloom_filter.h"
#include "core/sharded_filter.h"
#include "cuckoo/cuckoo_filter.h"
#include "quotient/prefix_filter.h"
#include "quotient/quotient_filter.h"
#include "quotient/vector_quotient_filter.h"
#include "staticf/xor_filter.h"
#include "util/random.h"
#include "workload/generators.h"

namespace bbf {
namespace {

// --- Vector quotient filter -------------------------------------------------

TEST(VectorQuotientFilter, BasicRoundTrip) {
  VectorQuotientFilter f(1000, 10);
  EXPECT_FALSE(f.Contains(7));
  EXPECT_TRUE(f.Insert(7));
  EXPECT_TRUE(f.Contains(7));
  EXPECT_TRUE(f.Erase(7));
  EXPECT_FALSE(f.Contains(7));
  EXPECT_FALSE(f.Erase(7));
}

TEST(VectorQuotientFilter, NoFalseNegativesAtHighLoad) {
  VectorQuotientFilter f(50000, 12);
  const auto keys = GenerateDistinctKeys(50000);
  uint64_t inserted = 0;
  for (uint64_t k : keys) inserted += f.Insert(k);
  // Power-of-two choices keeps blocks balanced: everything should fit.
  EXPECT_EQ(inserted, keys.size());
  for (uint64_t k : keys) ASSERT_TRUE(f.Contains(k));
}

TEST(VectorQuotientFilter, FprNearExpected) {
  VectorQuotientFilter f(50000, 12);
  const auto keys = GenerateDistinctKeys(50000);
  for (uint64_t k : keys) f.Insert(k);
  const auto negatives = GenerateNegativeKeys(keys, 100000);
  uint64_t fp = 0;
  for (uint64_t k : negatives) fp += f.Contains(k);
  // ~2 buckets x ~1.1 entries x 2^-12.
  EXPECT_LT(static_cast<double>(fp) / negatives.size(), 0.003);
}

TEST(VectorQuotientFilter, MetadataBitsMatchVqfClaim) {
  // ~(40 + 48)/48 = 1.83 metadata bits/slot at our geometry, below the
  // paper's quoted 2.914 for theirs and far below the plain QF's 3.
  VectorQuotientFilter f(10000, 8);
  const double bits_per_slot =
      static_cast<double>(f.SpaceBits()) /
      ((10000.0 / 0.9 / 48.0) * 48.0);
  EXPECT_LT(bits_per_slot - 8.0, 3.0);
}

TEST(VectorQuotientFilter, ChurnAgainstReference) {
  // Geometry chosen so (remainder, block, bucket) collisions between the
  // 800 distinct keys are vanishingly rare: like every fingerprint filter,
  // deleting one of two colliding keys would shadow the other (see the
  // quotient-filter twin-deletion test).
  VectorQuotientFilter f(3000, 16);
  std::unordered_map<uint64_t, uint64_t> ref;
  SplitMix64 rng(41);
  for (int op = 0; op < 40000; ++op) {
    const uint64_t key = rng.NextBelow(800);
    if (rng.NextDouble() < 0.55) {
      if (f.LoadFactor() < 0.85 && f.Insert(key)) ++ref[key];
    } else {
      auto it = ref.find(key);
      if (it != ref.end()) {
        ASSERT_TRUE(f.Erase(key)) << op;
        if (--it->second == 0) ref.erase(it);
      }
    }
  }
  for (const auto& [k, c] : ref) ASSERT_TRUE(f.Contains(k));
}

// --- Prefix filter ----------------------------------------------------------

TEST(PrefixFilter, NoFalseNegatives) {
  PrefixFilter f(50000, 10);
  const auto keys = GenerateDistinctKeys(50000);
  for (uint64_t k : keys) ASSERT_TRUE(f.Insert(k));
  for (uint64_t k : keys) ASSERT_TRUE(f.Contains(k));
  EXPECT_GT(f.spare_keys(), 0u);  // Some buckets must have spilled.
}

TEST(PrefixFilter, FprNearFingerprintRate) {
  PrefixFilter f(50000, 11);
  const auto keys = GenerateDistinctKeys(50000);
  for (uint64_t k : keys) f.Insert(k);
  const auto negatives = GenerateNegativeKeys(keys, 100000);
  uint64_t fp = 0;
  for (uint64_t k : negatives) fp += f.Contains(k);
  // ~bucket size x 2^-11 plus the spare's contribution.
  EXPECT_LT(static_cast<double>(fp) / negatives.size(), 0.03);
}

TEST(PrefixFilter, SemiDynamicNoDeletes) {
  PrefixFilter f(100, 10);
  f.Insert(1);
  EXPECT_FALSE(f.Erase(1));
  EXPECT_EQ(f.Class(), FilterClass::kSemiDynamic);
}

// --- Sharded concurrent wrapper ---------------------------------------------

TEST(ShardedFilter, ConcurrentInsertAndQuery) {
  ShardedFilter f(100000, 8, [](uint64_t capacity) {
    return std::make_unique<CuckooFilter>(capacity, 12);
  });
  const auto keys = GenerateDistinctKeys(80000);
  constexpr int kThreads = 8;
  std::vector<std::thread> workers;
  for (int t = 0; t < kThreads; ++t) {
    workers.emplace_back([&, t] {
      for (size_t i = t; i < keys.size(); i += kThreads) {
        f.Insert(keys[i]);
      }
    });
  }
  for (auto& w : workers) w.join();
  EXPECT_EQ(f.NumKeys(), keys.size());
  // Concurrent mixed read/write phase.
  std::vector<std::thread> mixed;
  std::atomic<uint64_t> misses{0};
  for (int t = 0; t < kThreads; ++t) {
    mixed.emplace_back([&, t] {
      for (size_t i = t; i < keys.size(); i += kThreads) {
        if (!f.Contains(keys[i])) ++misses;
        if (i % 8 == 0) {
          f.Erase(keys[i]);
          f.Insert(keys[i]);
        }
      }
    });
  }
  for (auto& w : mixed) w.join();
  EXPECT_EQ(misses.load(), 0u)
      << "a key may only be missing while its own thread re-inserts it";
  for (uint64_t k : keys) ASSERT_TRUE(f.Contains(k));
}

TEST(ShardedFilter, WrapsAnyDynamicFilter) {
  ShardedFilter f(10000, 4, [](uint64_t capacity) {
    return std::make_unique<QuotientFilter>(
        QuotientFilter::ForCapacity(capacity, 0.01));
  });
  const auto keys = GenerateDistinctKeys(8000);
  for (uint64_t k : keys) ASSERT_TRUE(f.Insert(k));
  for (uint64_t k : keys) ASSERT_TRUE(f.Contains(k));
  for (uint64_t k : keys) ASSERT_TRUE(f.Erase(k));
  EXPECT_EQ(f.NumKeys(), 0u);
}

// --- Serialization ----------------------------------------------------------

TEST(Serialization, BloomRoundTrip) {
  BloomFilter f(10000, 10.0, 0, /*hash_seed=*/42);
  const auto keys = GenerateDistinctKeys(10000);
  for (uint64_t k : keys) f.Insert(k);
  std::stringstream ss;
  f.Save(ss);
  BloomFilter g(1, 1.0);
  ASSERT_TRUE(g.Load(ss));
  EXPECT_EQ(g.NumKeys(), f.NumKeys());
  EXPECT_EQ(g.SpaceBits(), f.SpaceBits());
  for (uint64_t k : keys) ASSERT_TRUE(g.Contains(k));
  // Identical bit-for-bit behaviour on negatives too.
  for (uint64_t k : GenerateNegativeKeys(keys, 20000)) {
    ASSERT_EQ(f.Contains(k), g.Contains(k));
  }
}

TEST(Serialization, QuotientRoundTripIncludingDeletes) {
  QuotientFilter f(14, 9);
  const auto keys = GenerateDistinctKeys(12000);
  for (uint64_t k : keys) ASSERT_TRUE(f.Insert(k));
  for (size_t i = 0; i < keys.size(); i += 3) ASSERT_TRUE(f.Erase(keys[i]));
  std::stringstream ss;
  f.Save(ss);
  QuotientFilter g(6, 1);
  ASSERT_TRUE(g.Load(ss));
  EXPECT_TRUE(g.table().CheckInvariants());
  EXPECT_EQ(g.NumKeys(), f.NumKeys());
  for (size_t i = 0; i < keys.size(); ++i) {
    if (i % 3 != 0) {
      ASSERT_TRUE(g.Contains(keys[i]));
    }
  }
  // The deserialized filter remains fully functional.
  ASSERT_TRUE(g.Insert(999999));
  ASSERT_TRUE(g.Contains(999999));
}

TEST(Serialization, XorRoundTrip) {
  const auto keys = GenerateDistinctKeys(20000);
  XorFilter f(keys, 12);
  std::stringstream ss;
  f.Save(ss);
  XorFilter g(std::vector<uint64_t>{1}, 4);
  ASSERT_TRUE(g.Load(ss));
  for (uint64_t k : keys) ASSERT_TRUE(g.Contains(k));
  EXPECT_EQ(g.SpaceBits(), f.SpaceBits());
}

TEST(Serialization, LoadRejectsTruncatedInput) {
  BloomFilter f(1000, 10.0);
  std::stringstream ss;
  f.Save(ss);
  std::string data = ss.str();
  data.resize(data.size() / 2);
  std::stringstream truncated(data);
  BloomFilter g(1, 1.0);
  EXPECT_FALSE(g.Load(truncated));
}

TEST(Serialization, LoadRejectsGarbageHeader) {
  std::stringstream ss("this is definitely not a filter");
  QuotientFilter g(6, 4);
  EXPECT_FALSE(g.Load(ss));
}

}  // namespace
}  // namespace bbf
